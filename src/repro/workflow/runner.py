"""Workflow execution: one runner, any backend, optional checkpoints.

:class:`WorkflowRunner` executes a validated
:class:`~repro.workflow.builder.Workflow` stage by stage on a
:class:`~repro.workflow.executor.StageExecutor`.  It adds the three
operational features the declarative layer exists for:

* **lifecycle hooks** — ``on_stage_start`` / ``on_stage_end`` /
  ``on_progress`` callables observe the run without touching it (the
  CLI uses them for progress lines, tests for crash injection);
* **per-stage overrides** — a stage may pin its own execution backend
  or worker count; the runner keeps one executor per distinct override
  but funnels all metrics into a single
  :class:`~repro.pregel.metrics.PipelineMetrics`, so the cost model
  still prices the workflow as a whole;
* **checkpoint/resume** — with a ``checkpoint_dir``, the whole workflow
  state is pickled after every stage;
  :meth:`WorkflowRunner.resume` (or ``run(..., resume=True)``) skips
  the completed prefix and continues bit-identically.

The :class:`WorkflowContext` passed to every stage carries the shared
``state`` dictionary plus the executor services
(``run_pregel``/``run_mapreduce``/``convert``/``add_metrics``), so a
context is a drop-in replacement wherever an executor is expected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import CheckpointError, WorkflowError
from ..pregel.metrics import PipelineMetrics
from ..telemetry import get_profiler, get_registry, get_timeline, span
from .builder import Workflow
from .checkpoint import Checkpoint, CheckpointStore, state_fingerprint
from .executor import StageExecutor
from .stage import Stage


@dataclass
class WorkflowEvent:
    """One lifecycle event of a workflow run.

    The runner emits these to every subscriber
    (:meth:`WorkflowRunner.subscribe`) as the run progresses.  ``kind``
    is one of ``stage-start`` / ``stage-end`` / ``stage-skipped`` /
    ``checkpoint`` / ``progress``; the remaining fields are populated
    per kind (``seconds`` only on ``stage-end``, ``path`` only on
    ``checkpoint``, ``message`` only on ``progress``).  Subscriber
    exceptions abort the run — by design, so observers can cancel a
    workflow at an exact stage boundary (the job service's cooperative
    cancel works this way).
    """

    kind: str
    stage: Optional[Stage] = None
    index: int = 0
    total: int = 0
    seconds: float = 0.0
    path: Any = None
    message: str = ""


#: A workflow-event observer.
EventSubscriber = Callable[[WorkflowEvent], None]


@dataclass
class WorkflowHooks:
    """Optional observers of a workflow run (legacy callback surface).

    ``on_stage_start(stage, index, total)`` and
    ``on_stage_end(stage, index, total, seconds)`` fire around every
    executed stage (including stages inside a
    :class:`~repro.workflow.stage.BranchStage`, which reuse the parent's
    index); ``on_stage_skipped(stage, index, total)`` fires for stages
    a resume skips; ``on_checkpoint(stage, path)`` after a checkpoint
    file is written; ``on_progress(message)`` for free-form progress
    events.  Exceptions raised by hooks abort the run — by design, so
    tests can inject crashes at exact stage boundaries.

    Since the telemetry plane landed, hooks are implemented as a
    :class:`WorkflowEvent` subscriber: the runner emits events, and
    :meth:`handle_event` dispatches each to the matching legacy
    callback.  Existing hook-based code keeps working unchanged; new
    observers should subscribe to events directly
    (:meth:`WorkflowRunner.subscribe`).
    """

    on_stage_start: Optional[Callable[[Stage, int, int], None]] = None
    on_stage_end: Optional[Callable[[Stage, int, int, float], None]] = None
    on_stage_skipped: Optional[Callable[[Stage, int, int], None]] = None
    on_checkpoint: Optional[Callable[[Stage, Any], None]] = None
    on_progress: Optional[Callable[[str], None]] = None

    def progress(self, message: str) -> None:
        if self.on_progress is not None:
            self.on_progress(message)

    def handle_event(self, event: WorkflowEvent) -> None:
        """Dispatch one runner event to the matching legacy callback."""
        if event.kind == "stage-start":
            if self.on_stage_start is not None:
                self.on_stage_start(event.stage, event.index, event.total)
        elif event.kind == "stage-end":
            if self.on_stage_end is not None:
                self.on_stage_end(event.stage, event.index, event.total, event.seconds)
        elif event.kind == "stage-skipped":
            if self.on_stage_skipped is not None:
                self.on_stage_skipped(event.stage, event.index, event.total)
        elif event.kind == "checkpoint":
            if self.on_checkpoint is not None:
                self.on_checkpoint(event.stage, event.path)
        elif event.kind == "progress":
            if self.on_progress is not None:
                self.on_progress(event.message)


class WorkflowContext:
    """What a stage sees while it runs: shared state + executor services."""

    def __init__(
        self,
        runner: "WorkflowRunner",
        executor: StageExecutor,
        state: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._runner = runner
        self.executor = executor
        self.state: Dict[str, Any] = state if state is not None else {}

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def require(self, key: str) -> Any:
        """``state[key]`` with a workflow-level error on absence."""
        try:
            return self.state[key]
        except KeyError:
            raise WorkflowError(
                f"workflow state has no value for {key!r} — did an upstream "
                "stage that provides it run?"
            ) from None

    # ------------------------------------------------------------------
    # executor services (a context duck-types as an executor)
    # ------------------------------------------------------------------
    def run_pregel(self, job):
        return self.executor.run_pregel(job)

    def run_mapreduce(self, name, records, map_fn, reduce_fn):
        return self.executor.run_mapreduce(name, records, map_fn, reduce_fn)

    def convert(self, name, vertices, convert_fn):
        return self.executor.convert(name, vertices, convert_fn)

    def add_metrics(self, metrics) -> None:
        self.executor.add_metrics(metrics)

    @property
    def pipeline_metrics(self) -> PipelineMetrics:
        return self.executor.pipeline_metrics

    @pipeline_metrics.setter
    def pipeline_metrics(self, metrics: PipelineMetrics) -> None:
        # A context duck-types as an executor, and executors must allow
        # metrics rebinding (a nested runner resuming from a checkpoint
        # calls _rebind_metrics on whatever executor it was given).
        self.executor.pipeline_metrics = metrics

    @property
    def partitioner(self):
        return self.executor.partitioner

    @property
    def num_workers(self) -> int:
        return self.executor.num_workers

    @property
    def backend(self) -> str:
        return self.executor.backend

    # ------------------------------------------------------------------
    # sub-stage execution (BranchStage bodies)
    # ------------------------------------------------------------------
    def run_substage(self, stage: Stage) -> None:
        self._runner._execute(stage, self)


class WorkflowRunner:
    """Executes workflows on an execution backend, with checkpointing."""

    def __init__(
        self,
        num_workers: int = 4,
        backend: str = "serial",
        columnar_messages: Optional[bool] = None,
        checkpoint_dir=None,
        hooks: Optional[WorkflowHooks] = None,
        executor: Optional[StageExecutor] = None,
        partitioner: Optional[str] = None,
        message_plane: Optional[str] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        if executor is not None:
            self._executor = executor
        else:
            self._executor = StageExecutor(
                num_workers=num_workers,
                backend=backend,
                columnar_messages=columnar_messages,
                partitioner=partitioner,
                message_plane=message_plane,
                memory_budget_mb=memory_budget_mb,
            )
        self.hooks = hooks or WorkflowHooks()
        # The legacy hooks object is simply the first event subscriber;
        # everything it observes arrives through the same channel as any
        # other subscriber.
        self._subscribers: List[EventSubscriber] = [self.hooks.handle_event]
        self._store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self._override_executors: Dict[Tuple[str, int], StageExecutor] = {}
        self._current_index = 0
        self._total_stages = 0
        # The (backend, num_workers) override of the stage currently
        # executing, if any — inner stages of a BranchStage inherit it
        # unless they carry their own.
        self._active_override: Tuple[Optional[str], Optional[int]] = (None, None)

    @property
    def executor(self) -> StageExecutor:
        """The default executor (stages without overrides run on it)."""
        return self._executor

    @property
    def checkpoint_dir(self):
        return self._store.directory if self._store is not None else None

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: EventSubscriber) -> EventSubscriber:
        """Register an observer of :class:`WorkflowEvent` emissions.

        Subscribers run synchronously in registration order (the legacy
        hooks object is always first); an exception from any subscriber
        aborts the run.  Returns ``subscriber`` so it can be used as a
        decorator.
        """
        self._subscribers.append(subscriber)
        return subscriber

    def _emit(self, event: WorkflowEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        state: Optional[Dict[str, Any]] = None,
        resume: bool = False,
    ) -> WorkflowContext:
        """Execute ``workflow`` and return its final context.

        ``state`` seeds the context's state dictionary (inputs such as
        reads live there).  With ``resume=True`` and a matching
        checkpoint in the runner's checkpoint directory, the completed
        prefix is skipped and the persisted state takes over; without a
        checkpoint the workflow simply starts from the beginning.
        """
        return self._run(workflow, state, resume=resume, require_checkpoint=False)

    def resume(
        self,
        workflow: Workflow,
        state: Optional[Dict[str, Any]] = None,
    ) -> WorkflowContext:
        """Like ``run(resume=True)`` but a missing checkpoint is an error.

        ``state`` may be omitted entirely — the checkpoint's state takes
        over anyway.  When given, it must carry the same values as the
        original run's seed state; checkpoints record a fingerprint of
        it and a mismatch raises :class:`~repro.errors.CheckpointError`
        rather than silently returning the old run's results.
        """
        return self._run(workflow, state, resume=True, require_checkpoint=True)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run(
        self,
        workflow: Workflow,
        state: Optional[Dict[str, Any]],
        resume: bool,
        require_checkpoint: bool,
    ) -> WorkflowContext:
        workflow.validate()
        order = workflow.execution_order()
        names = [stage.name for stage in order]
        ctx = WorkflowContext(self, self._executor, dict(state or {}))
        self._total_stages = len(order)
        registry = get_registry()
        checkpoint_seconds = registry.histogram(
            "repro_checkpoint_write_seconds",
            "Seconds spent writing workflow checkpoints.",
        )

        # The seed fingerprint ties checkpoints to this run's inputs:
        # stage names alone cannot tell two runs of the same workflow
        # over different data/parameters apart.  Resuming with an empty
        # seed state means "use the checkpoint's" and skips the check.
        fingerprint = (
            state_fingerprint(ctx.state)
            if self._store is not None and ctx.state
            else None
        )

        with span(
            f"workflow:{workflow.name}", stages=len(order), resume=resume
        ) as run_span:
            completed = 0
            if resume:
                completed, restored = self._load_resume_point(
                    workflow, names, fingerprint, require_checkpoint
                )
                if restored is not None:
                    ctx.state = restored.state
                    # Checkpoints written by the continued run must keep
                    # the original run's fingerprint, whatever seed state
                    # this call was (or was not) given.
                    fingerprint = restored.seed_fingerprint
                    self._rebind_metrics(restored.metrics)
                    for index in range(completed):
                        self._emit(
                            WorkflowEvent(
                                "stage-skipped",
                                stage=order[index],
                                index=index,
                                total=len(order),
                            )
                        )
                    self._emit(
                        WorkflowEvent(
                            "progress",
                            message=(
                                f"resumed workflow {workflow.name!r}: skipping "
                                f"{completed}/{len(order)} completed stages"
                            ),
                        )
                    )
                    run_span.set(resumed_from=completed)

            if self._store is not None and completed == 0:
                # Starting from stage 0 into a directory with leftovers: a
                # previous run's higher-numbered checkpoints would outlive
                # this run's overwrites and shadow it on a later resume.
                self._store.clear(workflow.name)

            for index in range(completed, len(order)):
                stage = order[index]
                self._current_index = index
                self._execute(stage, ctx)
                if self._store is not None:
                    save_started = time.perf_counter()
                    path = self._store.save(
                        Checkpoint(
                            workflow=workflow.name,
                            stage_names=names,
                            completed=index + 1,
                            state=ctx.state,
                            metrics=self._executor.pipeline_metrics,
                            seed_fingerprint=fingerprint,
                        )
                    )
                    checkpoint_seconds.observe(time.perf_counter() - save_started)
                    self._emit(
                        WorkflowEvent("checkpoint", stage=stage, path=path)
                    )
        registry.counter(
            "repro_workflow_runs_total",
            "Completed workflow runs, by workflow.",
            labelnames=("workflow",),
        ).labels(workflow.name).inc()
        return ctx

    def _load_resume_point(
        self,
        workflow: Workflow,
        names,
        fingerprint,
        require_checkpoint: bool,
    ):
        if self._store is None:
            raise CheckpointError(
                "cannot resume: the runner has no checkpoint directory"
            )
        checkpoint = self._store.latest(workflow.name)
        if checkpoint is None:
            if require_checkpoint:
                raise CheckpointError(
                    f"no checkpoint for workflow {workflow.name!r} "
                    f"in {self._store.directory}"
                )
            return 0, None
        if checkpoint.stage_names != names:
            raise CheckpointError(
                f"checkpoint in {self._store.directory} was written by a "
                f"differently-shaped run of workflow {workflow.name!r} "
                f"(stages {checkpoint.stage_names} != {names}); "
                "start fresh or point at a different directory"
            )
        if (
            fingerprint is not None
            and checkpoint.seed_fingerprint is not None
            and checkpoint.seed_fingerprint != fingerprint
        ):
            raise CheckpointError(
                f"checkpoint in {self._store.directory} was written by a run "
                f"of workflow {workflow.name!r} over different inputs or "
                "parameters; start fresh or point at a different directory"
            )
        return checkpoint.completed, checkpoint

    def _execute(self, stage: Stage, ctx: WorkflowContext) -> None:
        index, total = self._current_index, self._total_stages
        self._emit(WorkflowEvent("stage-start", stage=stage, index=index, total=total))
        # A stage's own override wins; otherwise the enclosing stage's
        # (a BranchStage pinned to a backend pins its whole sub-path).
        inherited_backend, inherited_workers = self._active_override
        backend = stage.backend or inherited_backend
        num_workers = stage.num_workers or inherited_workers
        executor = self._executor_for(backend, num_workers)
        previous_executor = ctx.executor
        previous_override = self._active_override
        ctx.executor = executor
        self._active_override = (backend, num_workers)
        timeline = get_timeline()
        timeline.record("stage-start", stage=stage.name, index=index, total=total)
        started = time.perf_counter()
        try:
            # Stage-level profiling covers the master process; Pregel
            # worker processes profile their own compute and ship it
            # back through the barrier channel.  profile_block is
            # re-entrant safe, so BranchStage sub-stages simply ride
            # their parent's profile.
            with get_profiler().profile_block(f"stage:{stage.name}"):
                with span(f"stage:{stage.name}", index=index):
                    stage.run(ctx)
        finally:
            ctx.executor = previous_executor
            self._active_override = previous_override
        elapsed = time.perf_counter() - started
        timeline.record(
            "stage-end",
            stage=stage.name,
            index=index,
            total=total,
            seconds=round(elapsed, 6),
        )
        get_registry().histogram(
            "repro_workflow_stage_seconds",
            "Wall-clock seconds per workflow stage.",
            labelnames=("stage",),
        ).labels(stage.name).observe(elapsed)
        self._emit(
            WorkflowEvent(
                "stage-end", stage=stage, index=index, total=total, seconds=elapsed
            )
        )

    def _executor_for(
        self, backend: Optional[str], num_workers: Optional[int]
    ) -> StageExecutor:
        if backend is None and num_workers is None:
            return self._executor
        backend = backend or self._executor.backend
        num_workers = num_workers or self._executor.num_workers
        key = (backend, num_workers)
        executor = self._override_executors.get(key)
        if executor is None:
            executor = StageExecutor(
                num_workers=num_workers,
                backend=backend,
                columnar_messages=getattr(self._executor, "columnar_messages", None),
                pipeline_metrics=self._executor.pipeline_metrics,
                partitioner=getattr(self._executor, "partitioner_name", None),
                message_plane=getattr(self._executor, "message_plane", None),
                memory_budget_mb=getattr(self._executor, "memory_budget_mb", None),
            )
            self._override_executors[key] = executor
        return executor

    def _rebind_metrics(self, metrics: PipelineMetrics) -> None:
        """Point every executor at the metrics restored from a checkpoint."""
        self._executor.pipeline_metrics = metrics
        for executor in self._override_executors.values():
            executor.pipeline_metrics = metrics
