"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only exists so
that `pip install -e .` works with the legacy (non-PEP-660) editable
code path on offline machines.
"""

from setuptools import setup

setup()
