"""Serial vs multiprocess telemetry parity.

The two execution backends must be observationally identical: the same
job traced on either produces the same span-tree *shape* (stage,
superstep and worker nesting), and the per-worker message counters sum
to exactly the same totals — the multiprocess merge at the superstep
barrier loses nothing and double-counts nothing.
"""

from __future__ import annotations

from repro.pregel import PregelEngine, PregelJob, Vertex
from repro.telemetry import MetricsRegistry, Tracer, use_registry, use_tracer


class RingVertex(Vertex):
    """Passes a token around a ring for a fixed number of supersteps."""

    def compute(self, messages, ctx):
        if ctx.superstep >= 3:
            self.vote_to_halt()
            return
        for target in self.edges:
            ctx.send(target, self.vertex_id)


def _ring_job(size: int = 40) -> PregelJob:
    return PregelJob(
        name="ring",
        vertices=[RingVertex(i, value=0, edges=[(i + 1) % size]) for i in range(size)],
    )


def _shape(tree: dict) -> list:
    """The tree as nested names only — ids and timings stripped."""
    return [tree["name"], [_shape(child) for child in tree["children"]]]


def _run_traced(backend: str):
    tracer, registry = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        with tracer.span("root") as root:
            result = PregelEngine(
                num_workers=3, backend=backend
            ).run(_ring_job())
    return root.to_dict(), registry, result


def test_span_tree_shape_identical_serial_vs_multiprocess():
    serial_tree, _, serial_result = _run_traced("serial")
    multi_tree, _, multi_result = _run_traced("multiprocess")

    assert _shape(serial_tree) == _shape(multi_tree)
    assert serial_result.metrics.total_messages == multi_result.metrics.total_messages

    # And the shape is the documented nesting, not accidentally flat.
    pregel = serial_tree["children"][0]
    assert pregel["name"] == "pregel:ring"
    supersteps = [child["name"] for child in pregel["children"]]
    assert supersteps == [f"superstep-{i}" for i in range(len(supersteps))]
    workers = [child["name"] for child in pregel["children"][0]["children"]]
    assert workers == ["worker-0", "worker-1", "worker-2"]


def test_one_trace_id_threads_through_multiprocess_worker_spans():
    tree, _, _ = _run_traced("multiprocess")
    trace_id = tree["trace_id"]

    def walk(node):
        assert node["trace_id"] == trace_id
        for child in node["children"]:
            walk(child)

    walk(tree)
    # Worker spans (recorded in another process) link to their superstep.
    superstep = tree["children"][0]["children"][0]
    for worker in superstep["children"]:
        assert worker["parent_id"] == superstep["span_id"]


def _worker_sums(registry: MetricsRegistry) -> dict:
    family = registry.counter(
        "repro_pregel_worker_messages_total",
        "Messages sent, per Pregel worker.",
        labelnames=("job", "worker"),
    )
    return {labels: child.value for labels, child in family.series()}


def test_counters_sum_exactly_across_workers():
    _, serial_registry, serial_result = _run_traced("serial")
    _, multi_registry, multi_result = _run_traced("multiprocess")

    serial_sums = _worker_sums(serial_registry)
    multi_sums = _worker_sums(multi_registry)
    assert serial_sums == multi_sums
    assert sum(serial_sums.values()) == serial_result.metrics.total_messages

    def job_total(registry):
        family = registry.counter(
            "repro_pregel_messages_total",
            "Pregel messages sent, total per job.",
            labelnames=("job",),
        )
        return family.labels("ring").value

    assert job_total(serial_registry) == serial_result.metrics.total_messages
    assert job_total(multi_registry) == multi_result.metrics.total_messages
