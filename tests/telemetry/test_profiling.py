"""Cross-process profile collection: merging, determinism, output formats.

A profile is gathered per stage (and per worker, shipped home as raw
pstats state over the barrier counter channel like metric deltas), so
the collector must merge additively, deterministically (same inputs in
any order produce the same hotspot table and folded stacks), and
degrade to a no-op when profiling is off.
"""

from __future__ import annotations

import cProfile
import pickle

from repro.telemetry import (
    NullProfileCollector,
    ProfileCollector,
    get_profiler,
    use_profiler,
)
from repro.telemetry.profiling import WORKER_STAGE, stats_state


def _busy(n: int = 2000) -> int:
    return sum(i * i for i in range(n))


def _profiled_state() -> dict:
    profiler = cProfile.Profile()
    profiler.enable()
    _busy()
    profiler.disable()
    return stats_state(profiler)


def test_stats_state_is_picklable_and_plain():
    state = _profiled_state()
    assert state  # something was recorded
    rehydrated = pickle.loads(pickle.dumps(state))
    assert rehydrated == state
    for key, (cc, nc, tt, ct, callers) in state.items():
        assert isinstance(key, tuple) and len(key) == 3
        assert isinstance(callers, dict)
        assert cc >= 0 and nc >= cc and tt >= 0.0 and ct >= 0.0


def test_profile_block_records_a_stage():
    collector = ProfileCollector()
    with collector.profile_block("stage:demo"):
        _busy()
    assert len(collector) > 0  # function rows recorded
    hotspots = collector.hotspots()
    assert hotspots, "profiled block produced no hotspots"
    assert any("busy" in entry["function"] for entry in hotspots)
    payload = collector.payload()
    assert payload["stages"] == ["stage:demo"]
    assert payload["functions_profiled"] > 0
    assert payload["self_seconds_total"] >= 0.0


def test_profile_block_is_reentrant_safe():
    # A stage that (indirectly) runs inside another profiled stage must
    # not try to enable a second profiler on the same thread — the
    # inner block rides the outer profile.
    collector = ProfileCollector()
    with collector.profile_block("outer"):
        with collector.profile_block("inner"):
            _busy()
    assert "outer" in collector.dump_stages()
    assert "inner" not in collector.dump_stages()


def test_merge_is_additive_and_order_independent():
    state_a, state_b = _profiled_state(), _profiled_state()

    forward, backward = ProfileCollector(), ProfileCollector()
    forward.merge_state(state_a)
    forward.merge_state(state_b)
    backward.merge_state(state_b)
    backward.merge_state(state_a)

    assert forward.dump_stages() == backward.dump_stages()
    assert forward.hotspots() == backward.hotspots()
    assert forward.folded() == backward.folded()
    assert forward.payload()["stages"] == [WORKER_STAGE]

    # Additive: merging the same state twice doubles the call counts.
    single, double = ProfileCollector(), ProfileCollector()
    single.merge_state(state_a)
    double.merge_state(state_a)
    double.merge_state(state_a)
    calls = {h["function"]: h["calls"] for h in single.hotspots(top_n=1000)}
    doubled = {h["function"]: h["calls"] for h in double.hotspots(top_n=1000)}
    assert doubled == {name: 2 * count for name, count in calls.items()}

    # None (worker had profiling off / nothing to report) is a no-op.
    forward.merge_state(None)
    assert forward.hotspots() == backward.hotspots()


def test_folded_output_is_flamegraph_collapsed_stacks(tmp_path):
    collector = ProfileCollector()
    with collector.profile_block("stage:demo"):
        _busy()
    folded = collector.folded()
    lines = folded.splitlines()
    assert lines == sorted(lines)  # deterministic ordering
    for line in lines:
        stack, _, weight = line.rpartition(" ")
        assert stack.startswith("stage:demo;")
        assert int(weight) >= 0  # integer microseconds

    path = tmp_path / "out" / "profile.folded"
    collector.write_folded(path)
    assert path.read_text().splitlines() == lines


def test_null_collector_is_inert(tmp_path):
    assert isinstance(get_profiler(), NullProfileCollector)
    null = get_profiler()
    with null.profile_block("anything"):
        _busy()
    assert len(null) == 0
    assert null.hotspots() == []
    assert null.folded() == ""

    with use_profiler(ProfileCollector()) as collector:
        assert get_profiler() is collector
    assert isinstance(get_profiler(), NullProfileCollector)
