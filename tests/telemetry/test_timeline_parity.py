"""Run-timeline parity and transport across execution backends.

The timeline's superstep events are recorded at the superstep barrier
on every backend (master-side, from the merged ``SuperstepMetrics``),
so serial and multiprocess runs of the same job — on either message
plane — must emit *identical* superstep event sequences once wall
-clock fields are stripped.  Worker resource samples ride the same
barrier counter channel as metric deltas, so a multiprocess run's
timeline must also carry per-worker samples merged into one recorder.
"""

from __future__ import annotations

import json

import pytest

from repro.pregel import PregelEngine, PregelJob, Vertex
from repro.telemetry import (
    NullTimeline,
    TimelineRecorder,
    get_timeline,
    read_timeline,
    use_timeline,
    write_timeline,
)


class RingVertex(Vertex):
    """Passes a token around a ring for a fixed number of supersteps."""

    def compute(self, messages, ctx):
        if ctx.superstep >= 3:
            self.vote_to_halt()
            return
        for target in self.edges:
            ctx.send(target, self.vertex_id)


def _ring_job(size: int = 40) -> PregelJob:
    return PregelJob(
        name="ring",
        vertices=[RingVertex(i, value=0, edges=[(i + 1) % size]) for i in range(size)],
    )


#: Wall-clock-dependent fields stripped before comparing sequences.
_TIMING_FIELDS = ("ts", "elapsed_seconds")


def _superstep_sequence(recorder) -> list:
    events = []
    for event in recorder.events():
        if event.get("kind") != "superstep":
            continue
        events.append(
            {k: v for k, v in event.items() if k not in _TIMING_FIELDS}
        )
    return events


def _run_with_timeline(backend: str, **engine_kwargs) -> TimelineRecorder:
    recorder = TimelineRecorder()
    with use_timeline(recorder):
        PregelEngine(num_workers=3, backend=backend, **engine_kwargs).run(_ring_job())
    return recorder


@pytest.mark.parametrize("message_plane", ["shm", "queue"])
def test_superstep_events_identical_serial_vs_multiprocess(message_plane):
    serial = _superstep_sequence(_run_with_timeline("serial"))
    multi = _superstep_sequence(
        _run_with_timeline("multiprocess", message_plane=message_plane)
    )
    assert serial, "serial run recorded no superstep events"
    assert serial == multi

    # The sequence is the documented shape: one event per superstep, in
    # order, carrying the merged counters.
    assert [event["superstep"] for event in serial] == list(range(len(serial)))
    assert all(event["job"] == "ring" for event in serial)
    assert sum(event["messages_sent"] for event in serial) > 0
    for field in (
        "active_vertices", "bytes_sent", "cross_worker_messages",
        "messages_delivered", "spill_events", "spill_bytes",
        "ledger_peak_bytes",
    ):
        assert all(field in event for event in serial)


def test_multiprocess_run_merges_worker_samples():
    recorder = _run_with_timeline("multiprocess")
    samples = [e for e in recorder.events() if e.get("kind") == "sample"]
    sources = {sample["source"] for sample in samples}
    # Each worker ships at least its final pre-barrier sample home.
    assert {"worker-0", "worker-1", "worker-2"} <= sources
    assert all(sample["rss_bytes"] > 0 for sample in samples)
    assert all(sample["pid"] > 0 for sample in samples)


def test_timeline_disabled_records_nothing():
    assert isinstance(get_timeline(), NullTimeline)
    result = PregelEngine(num_workers=2, backend="serial").run(_ring_job(10))
    assert result.metrics.total_messages > 0
    assert len(get_timeline()) == 0


def test_write_and_read_round_trip_sorted_by_timestamp(tmp_path):
    recorder = TimelineRecorder()
    recorder.record("b", ts=2.0, value=1)
    recorder.record("a", ts=1.0, value=2)
    path = tmp_path / "deep" / "timeline.jsonl"
    write_timeline(recorder, path)

    events = read_timeline(path)
    assert [event["kind"] for event in events] == ["a", "b"]
    # JSONL: one parseable object per line, keys sorted for clean diffs.
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line) for line in lines)


def test_read_timeline_skips_torn_final_line(tmp_path):
    path = tmp_path / "timeline.jsonl"
    path.write_text('{"kind": "a", "ts": 1.0}\n{"kind": "b", "ts"')
    assert [event["kind"] for event in read_timeline(path)] == ["a"]
