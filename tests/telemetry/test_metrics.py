"""Unit tests for metric families, cross-process state, and rendering."""

from __future__ import annotations

import json
import logging

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    JsonLogFormatter,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    get_registry,
    render_prometheus,
    use_registry,
    use_tracer,
)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def test_counter_goes_up_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.read() == 3.5
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)


def test_gauge_set_inc_dec_and_callback():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "help")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(1)
    assert gauge.read() == 14
    sampled = registry.gauge("sampled", "help", callback=lambda: 42)
    assert sampled.read() == 42


def test_histogram_buckets_sum_and_count():
    registry = MetricsRegistry()
    histogram = registry.histogram("h_seconds", "help", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    state = histogram.read()
    assert state["counts"] == [1, 1, 1]  # (-inf,0.1], (0.1,1], (1,+inf)
    assert state["count"] == 3
    assert state["total"] == pytest.approx(2.55)


def test_labeled_series_are_separate_children():
    registry = MetricsRegistry()
    family = registry.counter("jobs_total", "help", labelnames=("job",))
    family.labels("a").inc()
    family.labels("a").inc()
    family.labels("b").inc(5)
    assert family.labels("a").value == 2
    assert family.labels("b").value == 5
    with pytest.raises(ValueError, match="expects labels"):
        family.labels("a", "extra")
    with pytest.raises(ValueError, match="call .labels"):
        family.inc()


def test_registry_rejects_kind_and_label_mismatch():
    registry = MetricsRegistry()
    registry.counter("x_total", "help")
    with pytest.raises(ValueError):
        registry.gauge("x_total", "help")
    registry.counter("y_total", "help", labelnames=("job",))
    with pytest.raises(ValueError):
        registry.counter("y_total", "help", labelnames=("worker",))


def test_get_or_create_returns_same_family():
    registry = MetricsRegistry()
    first = registry.counter("same_total", "help")
    second = registry.counter("same_total", "help")
    assert first is second


# ----------------------------------------------------------------------
# cross-process state (what the multiprocess backend ships)
# ----------------------------------------------------------------------
def test_merge_state_sums_counters_and_histograms():
    master, worker = MetricsRegistry(), MetricsRegistry()
    master.counter("m_total", "help", labelnames=("job",)).labels("j").inc(10)
    worker.counter("m_total", "help", labelnames=("job",)).labels("j").inc(3)
    worker.histogram("h_seconds", "help", buckets=(1.0,)).observe(0.5)

    master.merge_state(worker.dump_state())
    assert master.counter("m_total", "help", labelnames=("job",)).labels("j").value == 13
    merged = master.histogram("h_seconds", "help", buckets=(1.0,)).read()
    assert merged == {"counts": [1, 0], "total": 0.5, "count": 1}


def test_drain_state_resets_so_deltas_never_double_count():
    worker = MetricsRegistry()
    worker.counter("d_total", "help").inc(4)
    first = worker.dump_state()
    assert worker.drain_state() == first
    assert worker.counter("d_total", "help").read() == 0

    master = MetricsRegistry()
    master.merge_state(first)
    master.merge_state(worker.drain_state())  # empty delta: no change
    assert master.counter("d_total", "help").read() == 4


def test_drain_state_never_drops_concurrent_increments():
    # Snapshot-and-clear shares one lock with child mutation, so an
    # increment racing a drain lands in either this delta or the next,
    # never in the gap between dump and reset.  Hammer it: the sum of
    # all drained deltas must equal exactly what was incremented.
    import threading

    worker, master = MetricsRegistry(), MetricsRegistry()
    counter = worker.counter("hammer_total", "help")
    total = 20_000

    def spin():
        for _ in range(total):
            counter.inc()

    thread = threading.Thread(target=spin)
    thread.start()
    while thread.is_alive():
        master.merge_state(worker.drain_state())
    thread.join()
    master.merge_state(worker.drain_state())
    assert master.counter("hammer_total", "help").read() == total


def test_callback_gauges_stay_local_to_their_process():
    registry = MetricsRegistry()
    registry.gauge("sampled", "help", callback=lambda: 7)
    # The family declaration ships, but no sampled value does: the
    # callback closes over process-local state and cannot be merged.
    assert registry.dump_state()["sampled"]["series"] == {}


# ----------------------------------------------------------------------
# defaults and scoping
# ----------------------------------------------------------------------
def test_default_registry_is_null_and_absorbs_everything():
    registry = get_registry()
    assert isinstance(registry, NullRegistry)
    assert registry.enabled is False
    registry.counter("ignored_total", "help").inc()
    registry.histogram("ignored_seconds", "help").labels("a").observe(1)
    registry.gauge("ignored", "help").set(3)


def test_use_registry_restores_previous():
    with use_registry(MetricsRegistry()) as registry:
        assert get_registry() is registry
        registry.counter("scoped_total", "help").inc()
    assert isinstance(get_registry(), NullRegistry)


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
def test_render_prometheus_counter_gauge_and_escaping():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "Jobs.", labelnames=("state",)).labels(
        'we"ird\\nam\ne'
    ).inc(2)
    registry.gauge("depth", "Depth.").set(1.5)
    text = render_prometheus(registry)
    assert "# HELP jobs_total Jobs.\n" in text
    assert "# TYPE jobs_total counter\n" in text
    assert 'jobs_total{state="we\\"ird\\\\nam\\ne"} 2\n' in text
    assert "# TYPE depth gauge\n" in text
    assert "depth 1.5\n" in text


def test_render_prometheus_histogram_is_cumulative_with_inf():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.7, 5.0):
        histogram.observe(value)
    text = render_prometheus(registry)
    assert 'lat_seconds_bucket{le="0.1"} 1\n' in text
    assert 'lat_seconds_bucket{le="1"} 3\n' in text
    assert 'lat_seconds_bucket{le="+Inf"} 4\n' in text
    assert "lat_seconds_count 4\n" in text
    assert "lat_seconds_sum 6.25\n" in text


def test_untouched_unlabeled_counter_renders_as_zero():
    registry = MetricsRegistry()
    registry.counter("quiet_total", "help")
    assert "quiet_total 0\n" in render_prometheus(registry)


def test_default_buckets_are_sorted_and_cover_subsecond_to_minute():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] <= 0.001
    assert DEFAULT_BUCKETS[-1] >= 60


# ----------------------------------------------------------------------
# JSON log lines
# ----------------------------------------------------------------------
def test_json_log_formatter_emits_trace_correlated_objects():
    formatter = JsonLogFormatter()
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",), None
    )
    record.context = {"job_id": "abc"}
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("active") as active:
            entry = json.loads(formatter.format(record))
    assert entry["message"] == "hello world"
    assert entry["level"] == "INFO"
    assert entry["logger"] == "repro.test"
    assert entry["job_id"] == "abc"
    assert entry["trace_id"] == active.trace_id
    assert entry["span_id"] == active.span_id

    # Without an active span the ids are simply absent.
    entry = json.loads(formatter.format(record))
    assert "trace_id" not in entry
