"""Unit tests for the span/tracer half of the telemetry plane."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    NoopTracer,
    Span,
    Tracer,
    current_span,
    get_tracer,
    remote_context,
    set_tracer,
    span,
    start_remote_span,
    use_tracer,
)


# ----------------------------------------------------------------------
# default (disabled) behaviour
# ----------------------------------------------------------------------
def test_default_tracer_is_noop():
    tracer = get_tracer()
    assert isinstance(tracer, NoopTracer)
    assert tracer.enabled is False
    assert current_span() is None
    assert remote_context() is None


def test_noop_span_is_shared_and_inert():
    with span("anything", key="value") as first:
        with span("nested") as second:
            assert second is first  # one shared instance, no allocation
        assert first.set(more=1) is first
        assert first.to_dict() == {}
    assert current_span() is None


# ----------------------------------------------------------------------
# real tracer
# ----------------------------------------------------------------------
def test_spans_nest_and_record_attributes_and_durations():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("root", kind="test") as root:
            with span("child-a") as child_a:
                child_a.set(items=3)
            with span("child-b"):
                pass
    tree = root.to_dict()
    assert tree["name"] == "root"
    assert tree["attributes"] == {"kind": "test"}
    assert [child["name"] for child in tree["children"]] == ["child-a", "child-b"]
    assert tree["children"][0]["attributes"] == {"items": 3}
    # One trace id threads through; parents link by span id.
    assert tree["children"][0]["trace_id"] == tree["trace_id"]
    assert tree["children"][0]["parent_id"] == tree["span_id"]
    assert tree["duration_seconds"] >= tree["children"][0]["duration_seconds"]
    assert tree["cpu_seconds"] is not None
    assert tree["status"] == "ok"


def test_exception_marks_span_error_and_propagates():
    tracer = Tracer()
    with use_tracer(tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with span("outer") as outer:
                with span("inner"):
                    raise RuntimeError("boom")
    tree = outer.to_dict()
    assert tree["status"] == "error"
    assert tree["children"][0]["status"] == "error"
    assert "boom" in tree["children"][0]["attributes"]["error"]


def test_finish_is_idempotent():
    root = Span("once")
    first = root.finish().duration_seconds
    assert root.finish().duration_seconds == first


def test_use_tracer_restores_previous():
    outer = Tracer()
    previous = set_tracer(outer)
    try:
        with use_tracer(Tracer()) as inner:
            assert get_tracer() is inner
        assert get_tracer() is outer
    finally:
        set_tracer(previous)


def test_threads_get_independent_span_trees():
    tracer = Tracer()
    roots = {}

    def record(name):
        with tracer.span(name) as root:
            with tracer.span(f"{name}-child"):
                pass
        roots[name] = root

    with use_tracer(tracer):
        threads = [
            threading.Thread(target=record, args=(f"thread-{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    trees = [roots[f"thread-{i}"].to_dict() for i in range(2)]
    # Separate roots, separate traces: neither adopted the other.
    assert trees[0]["trace_id"] != trees[1]["trace_id"]
    assert [child["name"] for child in trees[0]["children"]] == ["thread-0-child"]
    assert [child["name"] for child in trees[1]["children"]] == ["thread-1-child"]


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------
def test_remote_span_dict_merges_into_local_tree():
    tracer = Tracer()
    with use_tracer(tracer):
        with span("superstep-0") as step:
            context = remote_context()
            assert context == (step.trace_id, step.span_id)
            # What a worker process does with the shipped context:
            shipped = start_remote_span("worker-0", context, worker=0).finish(
                messages_sent=7
            )
            step.add_child(shipped)
    tree = step.to_dict()
    child = tree["children"][0]
    assert child["name"] == "worker-0"
    assert child["trace_id"] == tree["trace_id"]
    assert child["parent_id"] == tree["span_id"]
    assert child["attributes"] == {"worker": 0, "messages_sent": 7}
    assert child["duration_seconds"] is not None
