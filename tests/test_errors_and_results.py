"""Tests for the exception hierarchy and the AssemblyResult helpers."""

from __future__ import annotations

import pytest

from repro import ReproError
from repro.errors import (
    AggregatorError,
    AlignmentError,
    AssemblyError,
    DnaError,
    FastqFormatError,
    GraphFormatError,
    InvalidJobError,
    InvalidKmerError,
    InvalidNucleotideError,
    PipelineConfigError,
    PregelError,
    QualityError,
    SuperstepLimitExceededError,
    VertexNotFoundError,
)


def test_every_exception_derives_from_repro_error():
    for exception_class in (
        PregelError,
        VertexNotFoundError,
        InvalidJobError,
        SuperstepLimitExceededError,
        AggregatorError,
        DnaError,
        InvalidNucleotideError,
        InvalidKmerError,
        FastqFormatError,
        AssemblyError,
        GraphFormatError,
        PipelineConfigError,
        QualityError,
        AlignmentError,
    ):
        assert issubclass(exception_class, ReproError)


def test_subsystem_grouping():
    assert issubclass(VertexNotFoundError, PregelError)
    assert issubclass(SuperstepLimitExceededError, PregelError)
    assert issubclass(InvalidNucleotideError, DnaError)
    assert issubclass(FastqFormatError, DnaError)
    assert issubclass(GraphFormatError, AssemblyError)
    assert issubclass(PipelineConfigError, AssemblyError)
    assert issubclass(AlignmentError, QualityError)


def test_error_payloads():
    vertex_error = VertexNotFoundError(42)
    assert vertex_error.vertex_id == 42
    assert "42" in str(vertex_error)

    limit_error = SuperstepLimitExceededError(100)
    assert limit_error.limit == 100

    nucleotide_error = InvalidNucleotideError("X", position=7)
    assert nucleotide_error.character == "X"
    assert "position 7" in str(nucleotide_error)

    fastq_error = FastqFormatError("bad record", line_number=12)
    assert fastq_error.line_number == 12
    assert "line 12" in str(fastq_error)


def test_catching_base_class_at_api_boundary():
    from repro.assembler import AssemblyConfig

    with pytest.raises(ReproError):
        AssemblyConfig(k=2)  # even k -> PipelineConfigError -> ReproError


def test_assembly_result_contig_ordering_and_counts(clean_dataset, small_config):
    from repro.assembler import PPAAssembler

    _genome, reads = clean_dataset
    result = PPAAssembler(small_config).assemble(reads)
    contigs = result.contigs
    assert contigs == sorted(contigs, key=len, reverse=True)
    assert result.num_contigs() == len(contigs)
    assert result.largest_contig() == (len(contigs[0]) if contigs else 0)
    # contigs_longer_than is consistent with num_contigs/total_length.
    threshold = result.largest_contig() // 2 + 1
    subset = result.contigs_longer_than(threshold)
    assert result.num_contigs(threshold) == len(subset)
    assert result.total_length(threshold) == sum(len(contig) for contig in subset)
