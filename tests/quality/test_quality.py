"""Tests for the QUAST-style quality assessment."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dna.sequence import reverse_complement
from repro.dna.simulator import generate_genome
from repro.errors import AlignmentError
from repro.quality import (
    ReferenceAligner,
    compare_assemblies,
    contig_statistics,
    evaluate_assembly,
    l50_value,
    n50_value,
    ng50_value,
    ngx_value,
    nx_value,
)


# ----------------------------------------------------------------------
# reference-free statistics
# ----------------------------------------------------------------------
def test_n50_basic():
    # total 100; half is 50; cumulative 40, 70 -> the 30-length contig.
    assert n50_value([40, 30, 20, 10]) == 30
    assert n50_value([100]) == 100
    assert n50_value([]) == 0
    assert n50_value([1, 1, 1, 1]) == 1


def test_l50_basic():
    assert l50_value([40, 30, 20, 10]) == 2
    assert l50_value([100]) == 1
    assert l50_value([]) == 0


def test_nx_value():
    lengths = [50, 30, 20]
    assert nx_value(lengths, 0.5) == n50_value(lengths)
    assert nx_value(lengths, 0.9) == 20
    with pytest.raises(ValueError):
        nx_value(lengths, 0.0)


def test_ng50_uses_the_reference_length():
    lengths = [50, 30, 20]
    # Assembly covers the whole 100 bp reference: NG50 == N50.
    assert ng50_value(lengths, 100) == n50_value(lengths)
    # Against a 200 bp reference the 100 assembled bp reach the half
    # point exactly at the last contig.
    assert ng50_value(lengths, 200) == 20
    # Assembly shorter than half the reference: NG50 undefined -> 0.
    assert ng50_value(lengths, 300) == 0
    assert ngx_value(lengths, 100, 0.9) == 20
    with pytest.raises(ValueError):
        ng50_value(lengths, 0)
    with pytest.raises(ValueError):
        ngx_value(lengths, 100, 1.5)


def test_ng50_rewards_scaffolding_not_padding():
    contig_lengths = [40, 40, 20]
    scaffold_lengths = [82, 20]  # the two 40s joined across a 2 bp gap
    assert ng50_value(scaffold_lengths, 100) > ng50_value(contig_lengths, 100)


@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50))
def test_property_n50_is_an_existing_length_and_at_least_median_weighted(lengths):
    value = n50_value(lengths)
    assert value in lengths
    # At least half of the total length lies in contigs >= N50.
    total = sum(lengths)
    assert sum(length for length in lengths if length >= value) * 2 >= total


def test_contig_statistics_respects_min_length():
    contigs = ["A" * 600, "C" * 400, "G" * 700]
    stats = contig_statistics(contigs, min_contig_length=500)
    assert stats.num_contigs == 2
    assert stats.total_length == 1300
    assert stats.largest_contig == 700
    assert stats.min_contig_length == 500


def test_contig_statistics_gc_percent():
    stats = contig_statistics(["GGCC", "AATT"], min_contig_length=1)
    assert stats.gc_percent == pytest.approx(50.0)


def test_contig_statistics_empty():
    stats = contig_statistics([], min_contig_length=500)
    assert stats.num_contigs == 0 and stats.n50 == 0 and stats.gc_percent == 0.0


# ----------------------------------------------------------------------
# aligner
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def reference():
    return generate_genome(6_000, repeat_fraction=0.0, seed=77)


def test_exact_substring_aligns_fully(reference):
    aligner = ReferenceAligner(reference, anchor_k=21)
    contig = reference[1000:2500]
    alignment = aligner.align_contig(contig)
    assert not alignment.is_misassembled
    assert alignment.aligned_length >= 0.95 * len(contig)
    assert alignment.mismatches == 0
    assert alignment.unaligned_length <= 0.05 * len(contig)


def test_reverse_complement_contig_aligns(reference):
    aligner = ReferenceAligner(reference, anchor_k=21)
    contig = reverse_complement(reference[2000:3000])
    alignment = aligner.align_contig(contig)
    assert alignment.aligned_length >= 0.9 * len(contig)
    assert all(block.is_reverse for block in alignment.blocks)


def test_contig_with_mismatches_counts_them(reference):
    aligner = ReferenceAligner(reference, anchor_k=21)
    contig = list(reference[500:1500])
    for position in (200, 600):
        contig[position] = {"A": "C", "C": "G", "G": "T", "T": "A"}[contig[position]]
    alignment = aligner.align_contig("".join(contig))
    assert not alignment.is_misassembled
    assert alignment.mismatches >= 2


def test_random_sequence_does_not_align(reference):
    aligner = ReferenceAligner(reference, anchor_k=21)
    foreign = generate_genome(800, seed=123456)
    alignment = aligner.align_contig(foreign)
    assert alignment.aligned_length < 100
    assert alignment.unaligned_length > 700


def test_chimeric_contig_flagged_as_misassembled(reference):
    aligner = ReferenceAligner(reference, anchor_k=21)
    chimera = reference[100:900] + reference[4000:4800]
    alignment = aligner.align_contig(chimera)
    assert alignment.is_misassembled


def test_short_contig_unaligned(reference):
    aligner = ReferenceAligner(reference, anchor_k=21)
    alignment = aligner.align_contig("ACGT")
    assert alignment.unaligned_length == 4
    assert alignment.blocks == []


def test_aligner_rejects_short_reference():
    with pytest.raises(AlignmentError):
        ReferenceAligner("ACGT", anchor_k=21)


# ----------------------------------------------------------------------
# combined report
# ----------------------------------------------------------------------
def test_evaluate_assembly_without_reference(reference):
    contigs = [reference[:1000], reference[2000:2700]]
    report = evaluate_assembly(contigs, assembler="test", min_contig_length=500)
    assert report.num_contigs == 2
    assert report.misassemblies is None
    assert "misassemblies" not in report.as_dict()


def test_evaluate_assembly_with_reference(reference):
    contigs = [reference[:2000], reference[2500:4500], reference[5000:5800]]
    report = evaluate_assembly(
        contigs, reference=reference, assembler="perfect", min_contig_length=100
    )
    assert report.misassemblies == 0
    assert report.genome_fraction > 75.0
    assert report.mismatches_per_100kbp == pytest.approx(0.0)
    assert report.largest_alignment >= 1900
    row = report.as_dict()
    assert row["assembler"] == "perfect"
    assert "genome_fraction" in row


def test_evaluate_assembly_detects_chimeras(reference):
    chimera = reference[100:900] + reference[4000:4800]
    report = evaluate_assembly(
        [chimera], reference=reference, assembler="chimeric", min_contig_length=100
    )
    assert report.misassemblies == 1
    assert report.misassembled_length == len(chimera)


def test_compare_assemblies_returns_one_report_per_assembler(reference):
    reports = compare_assemblies(
        {"good": [reference[:3000]], "empty": []},
        reference=reference,
        min_contig_length=100,
    )
    assert [report.assembler for report in reports] == ["good", "empty"]
    assert reports[1].num_contigs == 0
