"""Tests for the execution-backend interface, registry and plumbing."""

from __future__ import annotations

import pytest

from repro.assembler import AssemblyConfig
from repro.errors import (
    InvalidJobError,
    PipelineConfigError,
    SuperstepLimitExceededError,
    UnknownBackendError,
    VertexNotFoundError,
)
from repro.pregel import PregelEngine, PregelJob, Vertex, run_single_job
from repro.workflow import StageExecutor
from repro.runtime import (
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    available_backends,
    create_backend,
)


class CountdownVertex(Vertex):
    """Stays active for ``value`` supersteps (module-level: picklable)."""

    def compute(self, messages, ctx):
        self.value -= 1
        if self.value <= 0:
            self.vote_to_halt()


class ForeverVertex(Vertex):
    def compute(self, messages, ctx):
        ctx.send(self.vertex_id, 1)


class BadSenderVertex(Vertex):
    def compute(self, messages, ctx):
        ctx.send(999, "hello")
        self.vote_to_halt()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_lists_both_builtin_backends():
    names = available_backends()
    assert "serial" in names
    assert "multiprocess" in names


def test_create_backend_by_name():
    backend = create_backend("serial", num_workers=3)
    assert isinstance(backend, SerialBackend)
    assert backend.num_workers == 3


def test_create_backend_passes_instances_through():
    backend = SerialBackend(num_workers=2)
    assert create_backend(backend) is backend


def test_unknown_backend_rejected():
    with pytest.raises(UnknownBackendError) as excinfo:
        create_backend("hadoop")
    assert "serial" in str(excinfo.value)


def test_backend_rejects_non_positive_workers():
    with pytest.raises(InvalidJobError):
        SerialBackend(num_workers=0)
    with pytest.raises(InvalidJobError):
        MultiprocessBackend(num_workers=-1)


# ----------------------------------------------------------------------
# engine delegation
# ----------------------------------------------------------------------
def test_engine_defaults_to_serial_backend():
    engine = PregelEngine(num_workers=2)
    assert engine.backend_name == "serial"
    assert isinstance(engine.backend, ExecutionBackend)


def test_engine_accepts_backend_name_and_instance():
    assert PregelEngine(2, backend="multiprocess").backend_name == "multiprocess"
    backend = SerialBackend(num_workers=5)
    engine = PregelEngine(2, backend=backend)
    assert engine.backend is backend
    # An instance's worker count wins over the engine argument.
    assert engine.num_workers == 5


def test_engine_rejects_unknown_backend():
    with pytest.raises(UnknownBackendError):
        PregelEngine(2, backend="bogus")


def test_run_single_job_accepts_backend():
    result = run_single_job(
        PregelJob(name="countdown", vertices=[CountdownVertex(1, value=2)]),
        num_workers=1,
        backend="serial",
    )
    assert result.num_supersteps == 2


# ----------------------------------------------------------------------
# multiprocess backend semantics
# ----------------------------------------------------------------------
def test_multiprocess_runs_simple_job():
    vertices = [CountdownVertex(i, value=3) for i in range(10)]
    result = PregelEngine(2, backend="multiprocess").run(
        PregelJob(name="countdown", vertices=vertices)
    )
    assert result.num_supersteps == 3
    assert all(vertex.value == 0 for vertex in result.vertices.values())


def test_multiprocess_empty_job_rejected():
    with pytest.raises(InvalidJobError):
        MultiprocessBackend(num_workers=2).run(PregelJob(name="empty", vertices=[]))


def test_multiprocess_superstep_limit_enforced():
    job = PregelJob(name="forever", vertices=[ForeverVertex(1)], max_supersteps=4)
    with pytest.raises(SuperstepLimitExceededError):
        MultiprocessBackend(num_workers=2).run(job)


def test_multiprocess_propagates_worker_exceptions():
    job = PregelJob(name="bad", vertices=[BadSenderVertex(1)])
    with pytest.raises(VertexNotFoundError):
        MultiprocessBackend(num_workers=2).run(job)


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------
def test_job_chain_plumbs_backend():
    chain = StageExecutor(num_workers=2, backend="multiprocess")
    assert chain.backend == "multiprocess"
    assert chain.engine.backend_name == "multiprocess"


def test_assembly_config_accepts_and_validates_backend():
    config = AssemblyConfig(k=15, backend="multiprocess")
    assert config.backend == "multiprocess"
    assert config.with_backend("serial").backend == "serial"
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(k=15, backend="spark")


def test_baselines_accept_and_validate_backend():
    from repro.baselines import AbyssLikeAssembler

    assembler = AbyssLikeAssembler(k=15, num_workers=2, backend="multiprocess")
    assert assembler.backend == "multiprocess"
    with pytest.raises(UnknownBackendError):
        AbyssLikeAssembler(k=15, num_workers=2, backend="spark")
