"""Lifecycle of the shared-memory arenas: no exit path may leak.

The master process owns every ``/dev/shm`` arena segment; workers only
attach.  These tests drive the paths where that ownership matters:

* a worker SIGKILLed mid-superstep — the backend must fail loudly
  *and* unlink every segment on its abort path;
* a dead Pregel master — the job-service supervisor sweeps the
  orphaned segments by PID;
* a host where shm allocation fails (the ``shm_alloc_fail`` fault) —
  the plane must fall back to the pickled-queue path with identical
  results;
* an arena too small for the traffic — overflow batches ride the
  queue and the grow protocol widens the arena, with identical
  results throughout.
"""

from __future__ import annotations

import glob
import json
import os
import signal

import pytest

from repro.errors import BackendExecutionError
from repro.pregel import PregelEngine, PregelJob, Vertex, min_combiner
from repro.runtime import MultiprocessBackend
from repro.runtime.shm import (
    shm_plane_usable,
    sweep_dead_masters,
    sweep_master_segments,
)

pytestmark = pytest.mark.skipif(
    not shm_plane_usable(), reason="POSIX shared memory not usable on this host"
)


def _arena_segments() -> set:
    return set(glob.glob("/dev/shm/psm_repro_*"))


class ChattyVertex(Vertex):
    """Floods minima around a ring: steady columnar traffic every step."""

    columnar_state = True

    def compute(self, messages, ctx):
        best = min(messages) if messages else self.value
        if ctx.superstep == 0 or best < self.value:
            self.value = min(self.value, best)
            for neighbor in self.edges:
                ctx.send(neighbor, self.value)
        self.vote_to_halt()


class SuicidalVertex(ChattyVertex):
    """SIGKILLs its own worker process at superstep 2."""

    def compute(self, messages, ctx):
        if ctx.superstep == 2 and self.vertex_id == 0:
            os.kill(os.getpid(), signal.SIGKILL)
        super().compute(messages, ctx)


def _ring_job(vertex_class, n=400, name="ring"):
    vertices = [
        vertex_class(i, value=i, edges=[(i + 1) % n, (i - 1) % n]) for i in range(n)
    ]
    return PregelJob(name=name, vertices=vertices, combiner=min_combiner())


def test_killed_worker_mid_superstep_leaks_no_segments():
    # The worker owning vertex 0 dies inside superstep 2, after the
    # arenas exist and carry traffic.  The master must raise — and its
    # abort path must unlink every arena segment even though the dead
    # worker could not participate in any cleanup.
    before = _arena_segments()
    backend = MultiprocessBackend(num_workers=2, message_plane="shm")
    with pytest.raises(BackendExecutionError):
        backend.run(_ring_job(SuicidalVertex, name="ring-killed"))
    assert _arena_segments() - before == set()


def test_supervisor_sweeps_segments_of_a_dead_master():
    # A SIGKILLed *master* cannot unlink anything itself; the service
    # supervisor reclaims its segments by the PID baked into the name.
    # Simulate the orphaned state directly: segment files named for a
    # PID that is not a live master (plain files, so this process's
    # resource tracker never adopts them).
    from repro.runtime.shm import segment_name

    fake_pid = 999_999_999  # no live process; sweep keys on the name only
    names = [segment_name(fake_pid, "deadbeef", worker, buf, 1) for worker in (0, 1) for buf in (0, 1)]
    for name in names:
        with open(f"/dev/shm/{name}", "wb") as handle:
            handle.write(b"\0" * 64)
    try:
        removed = sweep_master_segments(fake_pid)
        assert sorted(removed) == sorted(names)
        assert not glob.glob(f"/dev/shm/psm_repro_{fake_pid}_*")
        # Sweeping again is a no-op, not an error.
        assert sweep_master_segments(fake_pid) == []
    finally:
        for name in names:  # pragma: no cover - only on assertion failure
            try:
                path = f"/dev/shm/{name}"
                if os.path.exists(path):
                    os.unlink(path)
            except OSError:
                pass


def test_dead_master_sweep_spares_live_owners():
    # sweep_dead_masters() is the restarted service's start-up
    # reclamation: it may remove only segments whose embedded master
    # PID is no longer alive.  Own segments (live PID: this process)
    # must survive; a dead PID's must go.
    from repro.runtime.shm import segment_name

    dead_name = segment_name(999_999_999, "cafecafe", 0, 0, 1)
    live_name = segment_name(os.getpid(), "cafecafe", 0, 0, 1)
    for name in (dead_name, live_name):
        with open(f"/dev/shm/{name}", "wb") as handle:
            handle.write(b"\0" * 64)
    try:
        removed = sweep_dead_masters()
        assert dead_name in removed
        assert live_name not in removed
        assert os.path.exists(f"/dev/shm/{live_name}")
        assert not os.path.exists(f"/dev/shm/{dead_name}")
    finally:
        for name in (dead_name, live_name):
            try:
                os.unlink(f"/dev/shm/{name}")
            except OSError:
                pass


def test_shm_alloc_fail_fault_forces_queue_fallback(monkeypatch):
    # The shm_alloc_fail injector simulates a host with an exhausted
    # /dev/shm: the plane must report itself unusable and the backend
    # must transparently run on the pickled-queue path with identical
    # results — and, obviously, zero segments.
    oracle = PregelEngine(2, backend="serial").run(_ring_job(ChattyVertex))

    monkeypatch.setenv("REPRO_FAULTS", json.dumps([{"kind": "shm_alloc_fail"}]))
    assert not shm_plane_usable()
    before = _arena_segments()
    backend = MultiprocessBackend(num_workers=2, message_plane="shm")
    result = backend.run(_ring_job(ChattyVertex))
    assert _arena_segments() == before

    assert result.vertex_values() == oracle.vertex_values()
    assert result.metrics.supersteps == oracle.metrics.supersteps


def test_tiny_arena_grows_without_changing_results():
    # An arena far too small for the ring's traffic: early batches
    # overflow to the queue while the grow protocol doubles the idle
    # buffer at each barrier.  Results must be bit-identical to serial
    # and nothing may leak.
    oracle = PregelEngine(2, backend="serial").run(_ring_job(ChattyVertex))
    backend = MultiprocessBackend(
        num_workers=2, message_plane="shm", shm_arena_bytes=4096
    )
    result = backend.run(_ring_job(ChattyVertex))
    assert result.vertex_values() == oracle.vertex_values()
    assert result.metrics.supersteps == oracle.metrics.supersteps
    assert _arena_segments() == set()


def test_queue_plane_never_allocates_segments():
    before = _arena_segments()
    backend = MultiprocessBackend(num_workers=2, message_plane="queue")
    result = backend.run(_ring_job(ChattyVertex))
    assert _arena_segments() == before
    oracle = PregelEngine(2, backend="serial").run(_ring_job(ChattyVertex))
    assert result.vertex_values() == oracle.vertex_values()


def test_service_kill_worker_recovery_leaves_no_segments(tmp_path, monkeypatch):
    """PR 7's recovery plus this PR's arenas: SIGKILL mid-assembly.

    The service worker process is the Pregel *master* of the
    multiprocess backend it runs; killing it strands its arena
    segments.  The supervisor must reclaim the job (recovery contract
    from the fault suite) and sweep the dead master's segments by PID.
    """
    import time

    from repro.service import AssemblyService, JobSpec

    monkeypatch.setenv(
        "REPRO_FAULTS",
        json.dumps([{"kind": "kill_worker", "stage": 2, "attempts": [1]}]),
    )
    service = AssemblyService(
        tmp_path / "shm-chaos",
        num_workers=1,
        port=0,
        poll_interval=0.05,
        lease_seconds=0.6,
        reap_interval=0.1,
        drain_timeout=10.0,
    )
    service.start()
    try:
        record = service.submit(
            JobSpec(
                input={"mode": "simulate", "genome_length": 12_000, "seed": 29},
                config={
                    "k": 17,
                    "backend": "multiprocess",
                    "num_workers": 2,
                    "message_plane": "shm",
                },
                retry={"max_attempts": 3, "backoff_seconds": 0.05},
            )
        )
        deadline = time.monotonic() + 240.0
        while time.monotonic() < deadline:
            current = service.store.get(record.id)
            if current.is_terminal:
                break
            time.sleep(0.05)
        events = [event.type for event in service.store.events(record.id)]
        assert current.state == "succeeded", events
        assert "recovered" in events
    finally:
        service.stop(wait=True)
    assert _arena_segments() == set()
