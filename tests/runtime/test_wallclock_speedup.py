"""Real parallelism: multiprocess + shm must beat serial on ≥2 cores.

The parity suite proves the multiprocess backend changes nothing
observable; this test proves it changes the one thing it exists for —
wall-clock time of compute-bound supersteps.  It only runs on hosts
with at least two cores (a single-core host cannot physically
parallelise, so it skips with that reason rather than asserting noise),
and only asserts when the serial baseline is long enough to dominate
process start-up costs on a loaded shared CI runner.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.pregel import PregelEngine, PregelJob, Vertex

NUM_VERTICES = 240
NUM_ROUNDS = 8
NUM_WORKERS = 4
WORK_PER_SUPERSTEP = 10_000

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="wall-clock speedup needs >=2 cores; a single-core host "
    "cannot parallelise, parity is covered elsewhere",
)


class BusyVertex(Vertex):
    """Burns a fixed arithmetic budget per superstep on a token ring."""

    def compute(self, messages, ctx):
        rounds_left, accumulator = self.value
        accumulator = (accumulator + sum(messages)) & 0x7FFFFFFF
        for _ in range(WORK_PER_SUPERSTEP):
            accumulator = (accumulator * 1103515245 + 12345) & 0x7FFFFFFF
        self.value = (rounds_left - 1, accumulator)
        if rounds_left > 1:
            ctx.send(self.edges[0], accumulator & 0xFF)
        self.vote_to_halt()


def _job():
    return PregelJob(
        name="busy-ring",
        vertices=[
            BusyVertex(i, value=(NUM_ROUNDS, i), edges=[(i + 1) % NUM_VERTICES])
            for i in range(NUM_VERTICES)
        ],
    )


def _timed(backend, message_plane="shm"):
    engine = PregelEngine(NUM_WORKERS, backend=backend, message_plane=message_plane)
    started = time.perf_counter()
    result = engine.run(_job())
    return result, time.perf_counter() - started


def test_multiprocess_shm_beats_serial_on_compute_bound_work():
    serial_result, serial_seconds = _timed("serial")
    mp_result, mp_seconds = _timed("multiprocess", message_plane="shm")
    assert mp_result.vertex_values() == serial_result.vertex_values()
    if serial_seconds < 1.0:
        pytest.skip(
            f"serial baseline too fast ({serial_seconds:.2f}s) for a "
            "robust wall-clock comparison on a shared runner"
        )
    assert mp_seconds < serial_seconds, (
        f"multiprocess+shm ({mp_seconds:.2f}s) should beat serial "
        f"({serial_seconds:.2f}s) on a {os.cpu_count()}-core host"
    )
