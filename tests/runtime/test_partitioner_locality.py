"""Locality: prefix-range partitioning must actually cut cross traffic.

``cross_worker_messages`` counts raw (pre-combine) messages whose
destination lives on a different worker than the sender — the traffic
that crosses a process (or network) boundary.  On the path-shaped
graphs a de Bruijn graph decomposes into, neighbouring vertex IDs are
numerically adjacent, so contiguous ID ranges keep almost every edge
worker-local while hash placement scatters them.  These tests pin both
halves of the claim: the counter is *exact* (verified against a direct
combinatorial count at superstep 0 and against the serial backend for
every later superstep), and prefix_range is *measurably* lower than
hash at 4 workers.
"""

from __future__ import annotations

import pytest

from repro.ppa.hash_min import run_hash_min
from repro.ppa.sv import GraphInput
from repro.pregel import PregelEngine
from repro.pregel.partitioner import make_partitioner

NUM_WORKERS = 4

#: A 400-vertex path: the shape contig labeling actually runs on.
PATH_EDGES = [(i, i + 1) for i in range(399)]


def _run(backend, partitioner, message_plane="shm"):
    engine = PregelEngine(
        num_workers=NUM_WORKERS,
        backend=backend,
        partitioner=partitioner,
        message_plane=message_plane,
    )
    return run_hash_min(GraphInput.from_edges(PATH_EDGES), engine=engine)


def _expected_superstep0_counts(partitioner_name):
    """Direct count: at superstep 0 every vertex messages every neighbour.

    Returns ``(total, local, cross)`` directed-message counts under the
    calibrated partitioner; ``total == local + cross`` by construction,
    which is the partition the counter claims to expose.
    """
    adjacency = GraphInput.from_edges(PATH_EDGES).adjacency
    partitioner = make_partitioner(partitioner_name, NUM_WORKERS).for_job(adjacency)
    total = local = 0
    for vertex, neighbors in adjacency.items():
        for neighbor in neighbors:
            total += 1
            if partitioner.worker_for(vertex) == partitioner.worker_for(neighbor):
                local += 1
    return total, local, total - local


@pytest.mark.parametrize("partitioner", ["hash", "prefix_range"])
@pytest.mark.parametrize("backend", ["serial", "multiprocess"])
def test_superstep0_cross_counter_is_exact(backend, partitioner):
    total, local, cross = _expected_superstep0_counts(partitioner)
    step0 = _run(backend, partitioner).metrics.supersteps[0]
    # The counter is exactly "raw messages minus worker-local
    # deliveries" — verified against a direct combinatorial count on
    # both backends.
    assert step0.messages_sent == total
    assert step0.cross_worker_messages == cross
    assert step0.messages_sent - step0.cross_worker_messages == local


@pytest.mark.parametrize("partitioner", ["hash", "prefix_range"])
def test_cross_counter_identical_across_backends_and_planes(partitioner):
    serial = _run("serial", partitioner)
    mp_shm = _run("multiprocess", partitioner, message_plane="shm")
    mp_queue = _run("multiprocess", partitioner, message_plane="queue")
    serial_cross = [s.cross_worker_messages for s in serial.metrics.supersteps]
    assert [s.cross_worker_messages for s in mp_shm.metrics.supersteps] == serial_cross
    assert [s.cross_worker_messages for s in mp_queue.metrics.supersteps] == serial_cross
    # Cross is a subset of all raw messages, superstep by superstep.
    for step in serial.metrics.supersteps:
        assert 0 <= step.cross_worker_messages <= step.messages_sent
    # And the job summary exposes the same total.
    assert serial.metrics.summary()["cross_worker_messages"] == sum(serial_cross)
    assert serial.metrics.total_cross_worker_messages == sum(serial_cross)


@pytest.mark.parametrize("backend", ["serial", "multiprocess"])
def test_prefix_range_cuts_cross_traffic_on_path_graphs(backend):
    hash_result = _run(backend, "hash")
    range_result = _run(backend, "prefix_range")
    hash_cross = hash_result.metrics.total_cross_worker_messages
    range_cross = range_result.metrics.total_cross_worker_messages
    # The totals the two placements split up are the same work.
    assert hash_result.metrics.total_messages == range_result.metrics.total_messages
    # On a path, contiguous ranges make only the 3 range boundaries
    # (4 workers) cross edges; hash placement scatters ~3/4 of all
    # traffic off-worker.  "Measurably lower" here is a 2× margin so
    # the test stays robust to partitioner tweaks.
    assert hash_cross > 0
    assert range_cross * 2 < hash_cross
    # Local + cross partitions the raw message count.
    assert range_cross <= range_result.metrics.total_messages
