"""Parity matrix for the shm message plane and the prefix partitioner.

The shared-memory message plane and the locality-aware partitioner are
pure transport/placement optimisations: nothing observable may change.
This suite drives ~20 seeded datasets (varying k, error rate, genome
length, and a paired-end quarter that exercises scaffolding) through a
serial *scalar* oracle (``use_vectorized=False`` — no columnar batches,
no NumPy kernels) and asserts bit-identical contigs, scaffolds, and
per-superstep :class:`~repro.pregel.metrics.PipelineMetrics` — including
the ``cross_worker_messages`` counter — for:

* the serial backend with columnar messages, and
* the multiprocess backend, rotating deterministically through all four
  message-plane × partitioner combinations so each combo is covered by
  ~5 datasets without running the full 4-way product per dataset.

Contig IDs embed the worker that minted them, so every comparison runs
oracle and candidates under the *same* partitioner; cross-partitioner
equality is deliberately not asserted.
"""

from __future__ import annotations

import pytest

from repro.assembler import AssemblyConfig, PPAAssembler
from repro.dna.simulator import simulate_dataset, simulate_paired_dataset
from repro.ppa.hash_min import run_hash_min
from repro.ppa.sv import GraphInput
from repro.pregel import PregelEngine

#: The four multiprocess (message_plane, partitioner) combinations;
#: dataset ``index % 4`` selects one, so 20 datasets cover each 5×.
MP_COMBOS = (
    ("shm", "hash"),
    ("shm", "prefix_range"),
    ("queue", "hash"),
    ("queue", "prefix_range"),
)

#: (index, k, genome_length, error_rate, paired) — 20 seeded datasets.
#: k cycles over the odd sizes 13..21, genome length sweeps 2000..4850,
#: error rate cycles clean/low/high, and every fourth dataset is a
#: paired-end library so the scaffolding stage joins the matrix.
DATASET_SPECS = [
    (index, (13, 15, 17, 19, 21)[index % 5], 2000 + 150 * index, (0.0, 0.004, 0.008)[index % 3], index % 4 == 3)
    for index in range(20)
]


def _config(spec, backend, message_plane, partitioner, use_vectorized):
    index, k, _length, _error_rate, paired = spec
    return AssemblyConfig(
        k=k,
        coverage_threshold=0,
        tip_length_threshold=40,
        num_workers=4,
        backend=backend,
        message_plane=message_plane,
        partitioner=partitioner,
        use_vectorized=use_vectorized,
        scaffold=paired,
    )


def _assemble(spec, backend, message_plane, partitioner, use_vectorized):
    index, k, length, error_rate, paired = spec
    config = _config(spec, backend, message_plane, partitioner, use_vectorized)
    assembler = PPAAssembler(config)
    if paired:
        _genome, pairs = simulate_paired_dataset(
            genome_length=length,
            read_length=80,
            coverage=12,
            insert_size_mean=300.0,
            insert_size_std=30.0,
            error_rate=error_rate,
            seed=1000 + index,
        )
        return assembler.assemble_paired(pairs)
    _genome, reads = simulate_dataset(
        genome_length=length,
        read_length=80,
        coverage=12,
        error_rate=error_rate,
        seed=1000 + index,
    )
    return assembler.assemble(reads)


def _assert_result_parity(oracle, candidate):
    """Everything a caller can observe must match the oracle exactly."""
    assert candidate.contigs == oracle.contigs
    assert [s.name for s in candidate.stages] == [s.name for s in oracle.stages]
    assert candidate.metrics.summary() == oracle.metrics.summary()
    assert len(candidate.metrics.jobs) == len(oracle.metrics.jobs)
    for oracle_job, candidate_job in zip(oracle.metrics.jobs, candidate.metrics.jobs):
        assert candidate_job.job_name == oracle_job.job_name
        assert candidate_job.summary() == oracle_job.summary()
        # SuperstepMetrics is a plain dataclass: == compares every
        # counter, per-worker breakdowns and cross_worker_messages
        # included, bit for bit.
        assert candidate_job.supersteps == oracle_job.supersteps
    assert (oracle.scaffolding is None) == (candidate.scaffolding is None)
    if oracle.scaffolding is not None:
        assert candidate.scaffolding.contigs == oracle.scaffolding.contigs
        assert candidate.scaffolding.sequences == oracle.scaffolding.sequences
        assert candidate.scaffolding.num_links_used == oracle.scaffolding.num_links_used


@pytest.mark.parametrize("spec", DATASET_SPECS, ids=lambda s: f"ds{s[0]:02d}-k{s[1]}-{'paired' if s[4] else 'single'}")
def test_shm_and_partitioner_parity(spec):
    message_plane, partitioner = MP_COMBOS[spec[0] % len(MP_COMBOS)]
    # The oracle: serial backend, scalar message/kernels path, same
    # partitioner as the candidates (contig IDs embed worker IDs).
    oracle = _assemble(spec, "serial", "queue", partitioner, use_vectorized=False)
    serial_columnar = _assemble(spec, "serial", message_plane, partitioner, use_vectorized=True)
    multiprocess = _assemble(spec, "multiprocess", message_plane, partitioner, use_vectorized=True)
    _assert_result_parity(oracle, serial_columnar)
    _assert_result_parity(oracle, multiprocess)


# ----------------------------------------------------------------------
# aggregate histories (not retained by AssemblyResult) at the job level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("message_plane,partitioner", MP_COMBOS, ids=lambda v: str(v))
def test_job_level_aggregate_parity(message_plane, partitioner):
    """Per-superstep aggregate snapshots survive every plane/partitioner."""
    edges = [(i, i + 1) for i in range(180)] + [(200 + i, 200 + (i + 1) % 40) for i in range(40)]
    graph = GraphInput.from_edges(edges)

    def run(backend, plane, part):
        engine = PregelEngine(
            num_workers=4, backend=backend, partitioner=part, message_plane=plane
        )
        return run_hash_min(graph, engine=engine)

    oracle = run("serial", "queue", partitioner)
    candidate = run("multiprocess", message_plane, partitioner)
    assert candidate.vertex_values() == oracle.vertex_values()
    assert candidate.aggregates == oracle.aggregates
    assert list(candidate.vertices) == list(oracle.vertices)
    assert candidate.metrics.supersteps == oracle.metrics.supersteps
