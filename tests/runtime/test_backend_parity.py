"""Backend parity: serial and multiprocess must be indistinguishable.

The multiprocess backend trades the serial backend's exact in-process
simulation for real parallelism, but nothing observable may change:
final vertex values, aggregate histories, superstep counts, message
totals and per-worker metric breakdowns all have to match bit for bit.
These tests assert that for the paper's PPA primitives (list ranking,
simplified S-V, hash-min) and for an end-to-end assembly run.
"""

from __future__ import annotations

import random

import pytest

from repro.assembler import AssemblyConfig, PPAAssembler
from repro.dna.simulator import simulate_dataset
from repro.ppa.hash_min import run_hash_min
from repro.ppa.list_ranking import ListNode, run_list_ranking
from repro.ppa.sv import GraphInput, run_simplified_sv, sequential_connected_components
from repro.pregel import PregelEngine, PregelJob, Vertex, min_combiner, sum_aggregator

WORKER_COUNTS = (1, 3)


def _engines(num_workers):
    return (
        PregelEngine(num_workers, backend="serial"),
        PregelEngine(num_workers, backend="multiprocess"),
    )


def _assert_job_parity(serial_result, multiprocess_result):
    """Everything a caller can observe must match exactly."""
    assert serial_result.vertex_values() == multiprocess_result.vertex_values()
    assert serial_result.aggregates == multiprocess_result.aggregates
    assert serial_result.num_supersteps == multiprocess_result.num_supersteps
    # Iteration order matters downstream (contig ID allocation), so the
    # vertex maps must agree on ordering, not just content.
    assert list(serial_result.vertices) == list(multiprocess_result.vertices)
    serial_steps = serial_result.metrics.supersteps
    multiprocess_steps = multiprocess_result.metrics.supersteps
    assert len(serial_steps) == len(multiprocess_steps)
    for serial_step, multiprocess_step in zip(serial_steps, multiprocess_steps):
        assert serial_step.active_vertices == multiprocess_step.active_vertices
        assert serial_step.worker_compute_ops == multiprocess_step.worker_compute_ops
        assert serial_step.worker_messages_sent == multiprocess_step.worker_messages_sent
        assert serial_step.worker_bytes_sent == multiprocess_step.worker_bytes_sent
        assert (
            serial_step.worker_messages_received
            == multiprocess_step.worker_messages_received
        )
        assert (
            serial_step.worker_bytes_received
            == multiprocess_step.worker_bytes_received
        )


def _random_graph(num_vertices, num_edges, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        a = rng.randrange(num_vertices)
        b = rng.randrange(num_vertices)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return GraphInput.from_edges(sorted(edges)).add_isolated(range(num_vertices))


# ----------------------------------------------------------------------
# PPA primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
def test_list_ranking_parity(num_workers):
    rng = random.Random(7)
    order = list(range(40))
    rng.shuffle(order)
    nodes = [
        ListNode(node_id=node, value=1.0, predecessor=prev)
        for node, prev in zip(order, [None] + order[:-1])
    ]
    serial_engine, multiprocess_engine = _engines(num_workers)
    serial_result = run_list_ranking(nodes, engine=serial_engine)
    multiprocess_result = run_list_ranking(nodes, engine=multiprocess_engine)
    _assert_job_parity(serial_result, multiprocess_result)


@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
def test_simplified_sv_parity(num_workers):
    graph = _random_graph(num_vertices=60, num_edges=70, seed=13)
    serial_engine, multiprocess_engine = _engines(num_workers)
    serial_result = run_simplified_sv(graph, engine=serial_engine)
    multiprocess_result = run_simplified_sv(graph, engine=multiprocess_engine)
    _assert_job_parity(serial_result, multiprocess_result)
    expected = sequential_connected_components(graph)
    labels = {
        vertex_id: vertex.value["D"]
        for vertex_id, vertex in multiprocess_result.vertices.items()
    }
    assert labels == expected


@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
def test_hash_min_parity(num_workers):
    graph = _random_graph(num_vertices=50, num_edges=55, seed=29)
    serial_engine, multiprocess_engine = _engines(num_workers)
    serial_result = run_hash_min(graph, engine=serial_engine)
    multiprocess_result = run_hash_min(graph, engine=multiprocess_engine)
    _assert_job_parity(serial_result, multiprocess_result)


# ----------------------------------------------------------------------
# combiners and aggregators across the process boundary
# ----------------------------------------------------------------------
class FloodVertex(Vertex):
    """Min-floods over a ring while counting active vertices."""

    def compute(self, messages, ctx):
        ctx.aggregate("active", 1)
        best = min(messages) if messages else self.value
        if ctx.superstep == 0 or best < self.value:
            self.value = min(self.value, best)
            for neighbor in self.edges:
                ctx.send(neighbor, self.value)
        self.vote_to_halt()


@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
def test_combiner_and_aggregator_parity(num_workers):
    def build():
        return [
            FloodVertex(i, value=i, edges=[(i + 1) % 30, (i - 1) % 30])
            for i in range(30)
        ]

    def run(backend):
        return PregelEngine(num_workers, backend=backend).run(
            PregelJob(
                name="flood",
                vertices=build(),
                combiner=min_combiner(),
                aggregators=[sum_aggregator("active")],
            )
        )

    serial_result = run("serial")
    multiprocess_result = run("multiprocess")
    _assert_job_parity(serial_result, multiprocess_result)
    assert serial_result.aggregates  # the aggregate history is non-trivial


def test_spawn_start_method_parity():
    """Built-in combiners/aggregators must survive spawn's pickling.

    Unlike fork, the spawn start method pickles all job state into the
    worker processes — this is the only path exercised on platforms
    without fork (e.g. Windows), so it gets its own (slow) test.
    """
    from repro.runtime import MultiprocessBackend

    def build():
        return [
            FloodVertex(i, value=i, edges=[(i + 1) % 12, (i - 1) % 12])
            for i in range(12)
        ]

    def job():
        return PregelJob(
            name="spawn-flood",
            vertices=build(),
            combiner=min_combiner(),
            aggregators=[sum_aggregator("active")],
        )

    serial_result = PregelEngine(2, backend="serial").run(job())
    spawn_backend = MultiprocessBackend(num_workers=2, start_method="spawn")
    spawn_result = spawn_backend.run(job())
    _assert_job_parity(serial_result, spawn_result)


# ----------------------------------------------------------------------
# end-to-end assembly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("labeling_method", ["list_ranking", "sv"])
def test_end_to_end_assembly_parity(labeling_method):
    _genome, reads = simulate_dataset(genome_length=2500, seed=23)

    def assemble(backend):
        config = AssemblyConfig(
            k=15, num_workers=2, labeling_method=labeling_method, backend=backend
        )
        return PPAAssembler(config).assemble(reads)

    serial_result = assemble("serial")
    multiprocess_result = assemble("multiprocess")

    assert serial_result.contigs == multiprocess_result.contigs
    assert [stage.name for stage in serial_result.stages] == [
        stage.name for stage in multiprocess_result.stages
    ]
    assert [stage.detail for stage in serial_result.stages] == [
        stage.detail for stage in multiprocess_result.stages
    ]
    assert serial_result.metrics.summary() == multiprocess_result.metrics.summary()
    for serial_job, multiprocess_job in zip(
        serial_result.metrics.jobs, multiprocess_result.metrics.jobs
    ):
        assert serial_job.summary() == multiprocess_job.summary()
