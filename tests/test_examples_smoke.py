"""Smoke tests: every documented example script must import and run.

The examples are the library's front door (the README and docs link to
them), so each one is executed here at a tiny scale via the
``REPRO_EXAMPLE_SCALE`` knob the scripts honour.  The goal is rot
protection — the scripts must run to completion against the current
API — not output validation.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: Every script under examples/ must be listed here (or the listing
#: test fails), so new examples cannot dodge the smoke run.
EXAMPLES = [
    "quickstart.py",
    "custom_workflow.py",
    "quality_report.py",
    "scaling_study.py",
    "scaffolding_demo.py",
    "service_demo.py",
]


def _run_example(name: str, argv: list, monkeypatch) -> None:
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", "0.1")
    monkeypatch.setattr(sys, "argv", [name] + argv)
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def test_every_example_is_smoke_tested():
    on_disk = sorted(script.name for script in EXAMPLES_DIR.glob("*.py"))
    assert on_disk == sorted(EXAMPLES)


def test_quickstart_runs(monkeypatch, capsys):
    _run_example("quickstart.py", [], monkeypatch)
    assert "contig statistics:" in capsys.readouterr().out


def test_custom_workflow_runs(monkeypatch, capsys):
    _run_example("custom_workflow.py", [], monkeypatch)
    output = capsys.readouterr().out
    assert "simulated cluster time" in output
    # The example's checkpoint/resume scenario must actually resume:
    # the simulated crash leaves checkpoints behind and the second
    # runner skips every completed stage.
    assert "simulated crash after stage" in output
    assert "resume skips completed stage" in output


def test_quality_report_runs(monkeypatch, capsys, tmp_path):
    _run_example("quality_report.py", [str(tmp_path)], monkeypatch)
    output = capsys.readouterr().out
    assert "Quality comparison" in output
    assert (tmp_path / "hc2_reads.fastq").exists()


def test_scaling_study_runs(monkeypatch, capsys):
    _run_example("scaling_study.py", ["hc2", "0.05"], monkeypatch)
    assert "Estimated execution time" in capsys.readouterr().out


def test_scaffolding_demo_runs(monkeypatch, capsys):
    _run_example("scaffolding_demo.py", [], monkeypatch)
    output = capsys.readouterr().out
    assert "scaffolding stage:" in output
    assert "contiguity:" in output


def test_service_demo_runs(monkeypatch, capsys):
    _run_example("service_demo.py", [], monkeypatch)
    output = capsys.readouterr().out
    assert "service up at http://" in output
    assert "plain job: succeeded" in output
    assert "scaffolded job: succeeded" in output
    assert "contig FASTA:" in output
