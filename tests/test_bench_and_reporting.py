"""Tests for the benchmark harness helpers and table formatting."""

from __future__ import annotations

import pytest

from repro.bench import (
    BENCH_K,
    FIGURE12_WORKERS,
    bench_cluster_profile,
    bench_scale,
    format_comparison,
    format_scaling_series,
    format_table,
    ppa_config,
    prepare_dataset,
)


def test_bench_constants_match_paper_setup():
    assert BENCH_K % 2 == 1
    assert FIGURE12_WORKERS == (16, 32, 48, 64)


def test_bench_scale_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bench_scale(0.3) == 0.3
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
    assert bench_scale() == 0.5
    monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
    assert bench_scale(0.25) == 0.25
    monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
    assert bench_scale(0.25) == 0.25


def test_bench_cluster_profile_is_consistent():
    profile = bench_cluster_profile()
    assert profile.seconds_per_compute_op > 0
    assert profile.seconds_per_byte > 0
    assert profile.job_overhead_seconds > 0


def test_prepare_dataset_caching_returns_same_object():
    first = prepare_dataset("hc2", scale=0.05)
    second = prepare_dataset("hc2", scale=0.05)
    assert first is second
    assert first.name == "hc2"


def test_dataset_disk_cache_roundtrip(monkeypatch, tmp_path):
    from repro.bench import harness
    from repro.dna.datasets import get_profile

    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path))
    profile = get_profile("hc2", scale=0.05)
    # A leftover from the pre-content-store flat-file layout is swept
    # the first time the cache is touched.
    legacy = tmp_path / "hc2-deadbeefdeadbeef.pkl"
    legacy.write_bytes(b"stale")

    assert harness._load_dataset_cache(profile) is None
    assert not legacy.exists()
    reference, reads = profile.generate()
    harness._store_dataset_cache(profile, reference, reads)
    store = harness._dataset_cache_store()
    name = harness._dataset_cache_name(profile)
    assert store.resolve_name(name) is not None

    cached = harness._load_dataset_cache(profile)
    assert cached is not None
    cached_reference, cached_reads = cached
    assert cached_reference == reference
    assert cached_reads == reads

    # A different scale (hence genome length) must miss, not collide.
    # (0.05 clamps to the 2 kb genome floor, so pick one above it.)
    other = get_profile("hc2", scale=0.2)
    assert harness._load_dataset_cache(other) is None

    # Corrupt payloads regenerate instead of crashing.
    store.put_named(name, b"not a pickle")
    assert harness._load_dataset_cache(profile) is None


def test_dataset_disk_cache_can_be_disabled(monkeypatch):
    from repro.bench import harness

    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", "off")
    assert harness.dataset_cache_dir() is None
    assert harness._dataset_cache_store() is None


def test_ppa_config_factory():
    config = ppa_config(num_workers=32, labeling_method="sv")
    assert config.num_workers == 32
    assert config.labeling_method == "sv"
    assert config.k == BENCH_K


def test_format_table_alignment_and_title():
    table = format_table(["Name", "Value"], [["a", 1], ["bbbb", 22]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1] and "Value" in lines[1]
    assert len(lines) == 5
    # Columns are aligned: header and data rows have the separator at the
    # same position (the divider line uses "-+-" instead).
    positions = {line.index("|") for line in (lines[1], lines[3], lines[4])}
    assert len(positions) == 1
    assert "-+-" in lines[2]


def test_format_comparison_metric_rows():
    rendered = format_comparison(
        ["n50", "missing"],
        {"PPA": {"n50": 100}, "ABySS": {"n50": 50}},
        title="Quality",
    )
    assert "n50" in rendered
    assert "-" in rendered  # missing metric filled with a dash
    assert rendered.index("PPA") < rendered.index("ABySS")


def test_format_scaling_series_rows_are_worker_counts():
    rendered = format_scaling_series(
        {"PPA": {16: 1.0, 64: 0.5}, "Ray": {16: 10.0, 64: 8.0}},
        title="Scaling",
        unit="s",
    )
    lines = rendered.splitlines()
    assert lines[0] == "Scaling"
    assert any(line.startswith("16") for line in lines)
    assert any(line.startswith("64") for line in lines)
    assert "10.0s" in rendered
