"""Tests for the baseline assemblers (ABySS/Ray/SWAP/Spaler-like)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BASELINES,
    AbyssLikeAssembler,
    BaselineResult,
    RayLikeAssembler,
    SpalerLikeAssembler,
    SwapLikeAssembler,
)
from repro.dna.sequence import reverse_complement
from repro.quality import evaluate_assembly, n50_value

ALL_CLASSES = [AbyssLikeAssembler, RayLikeAssembler, SwapLikeAssembler, SpalerLikeAssembler]


@pytest.fixture(scope="module")
def dataset(noisy_dataset):
    return noisy_dataset


def test_registry_contains_all_paper_baselines():
    assert set(BASELINES) == {"ABySS", "Ray", "SWAP-Assembler", "Spaler"}


@pytest.mark.parametrize("assembler_class", ALL_CLASSES)
def test_baseline_produces_contigs_covering_most_of_the_genome(dataset, assembler_class):
    genome, reads = dataset
    result = assembler_class(k=15, num_workers=4).assemble(reads)
    assert isinstance(result, BaselineResult)
    assert result.num_contigs() > 0
    assert result.estimated_seconds > 0
    # The assembled bases should be in the same ballpark as the genome
    # (no massive over- or under-assembly).
    assert 0.5 * len(genome) <= result.total_length() <= 2.0 * len(genome)


@pytest.mark.parametrize("assembler_class", ALL_CLASSES)
def test_baseline_contigs_are_mostly_genuine(dataset, assembler_class):
    genome, reads = dataset
    result = assembler_class(k=15, num_workers=4).assemble(reads)
    report = evaluate_assembly(
        result.contigs_longer_than(100),
        reference=genome,
        assembler=result.assembler,
        min_contig_length=100,
        anchor_k=15,
    )
    if report.num_contigs:
        assert report.genome_fraction > 30.0
        assert report.mismatches_per_100kbp < 2_000


@pytest.mark.parametrize("assembler_class", ALL_CLASSES)
def test_baseline_validation_of_parameters(assembler_class):
    with pytest.raises(ValueError):
        assembler_class(k=0)
    with pytest.raises(ValueError):
        assembler_class(k=15, num_workers=0)


def test_abyss_probing_increases_ambiguity(dataset):
    """Section V's criticism: probing all 8 neighbours inflates ambiguity."""
    genome, reads = dataset
    abyss = AbyssLikeAssembler(k=15, num_workers=4).assemble(reads)
    swap = SwapLikeAssembler(k=15, num_workers=4).assemble(reads)
    assert abyss.counters["ambiguous_vertices"] >= swap.counters["ambiguous_vertices"]
    assert abyss.counters["probe_messages"] == 8 * abyss.counters["kmers"]


def test_abyss_runtime_insensitive_to_workers(dataset):
    _genome, reads = dataset
    few = AbyssLikeAssembler(k=15, num_workers=16).assemble(reads)
    many = AbyssLikeAssembler(k=15, num_workers=64).assemble(reads)
    ratio = few.estimated_seconds / many.estimated_seconds
    assert 0.7 < ratio < 1.3  # flat scaling


def test_ray_is_slowest_baseline(dataset):
    """Figure 12: Ray is roughly an order of magnitude slower."""
    _genome, reads = dataset
    ray = RayLikeAssembler(k=15, num_workers=16).assemble(reads)
    abyss = AbyssLikeAssembler(k=15, num_workers=16).assemble(reads)
    swap = SwapLikeAssembler(k=15, num_workers=16).assemble(reads)
    assert ray.estimated_seconds > abyss.estimated_seconds
    assert ray.estimated_seconds > swap.estimated_seconds


def test_ray_and_swap_scale_with_workers(dataset):
    _genome, reads = dataset
    for assembler_class in (RayLikeAssembler, SwapLikeAssembler):
        few = assembler_class(k=15, num_workers=16).assemble(reads)
        many = assembler_class(k=15, num_workers=64).assemble(reads)
        assert many.estimated_seconds < few.estimated_seconds


def test_ray_does_not_over_assemble(dataset):
    genome, reads = dataset
    result = RayLikeAssembler(k=15, num_workers=4).assemble(reads)
    assert result.total_length() <= 1.2 * len(genome)


def test_swap_is_more_fragmented_than_abyss_or_equal(dataset):
    """SWAP performs no error correction: lower N50 than the others (Table IV shape)."""
    _genome, reads = dataset
    swap = SwapLikeAssembler(k=15, num_workers=4).assemble(reads)
    abyss = AbyssLikeAssembler(k=15, num_workers=4).assemble(reads)
    assert len(swap.contigs) >= len(abyss.contigs) * 0.5  # sanity: same ballpark
    assert n50_value([len(c) for c in swap.contigs]) <= n50_value([len(c) for c in abyss.contigs]) * 1.5


def test_spaler_iterations_counted(dataset):
    _genome, reads = dataset
    result = SpalerLikeAssembler(k=15, num_workers=4, seed=3).assemble(reads)
    assert result.counters["spark_iterations"] >= 1


def test_baseline_result_helpers():
    result = BaselineResult(
        assembler="x", contigs=["A" * 10, "C" * 600], num_workers=4
    )
    assert result.num_contigs(min_length=500) == 1
    assert result.total_length(min_length=500) == 600
    assert result.largest_contig() == 600


def test_baselines_deterministic(dataset):
    _genome, reads = dataset
    first = AbyssLikeAssembler(k=15, num_workers=4).assemble(reads)
    second = AbyssLikeAssembler(k=15, num_workers=4).assemble(reads)
    assert first.contigs == second.contigs
