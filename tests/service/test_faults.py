"""Chaos matrix: every fault injector against a live service.

Each scenario starts a fresh process-plane service with a
``REPRO_FAULTS`` plan in the environment (inherited by the spawned
workers), submits one job, and asserts the full recovery contract from
the outside: the job is reclaimed *without any service restart*,
retried, and its contigs are byte-identical to an unfaulted direct
library run — on both execution backends.

The injectors are deterministic (exact stage/attempt matches), so a red
run here is a reproducible bug, not flake.  Stage indices used below:
0 = dbg-construction, 1 = contig-labeling/kmers,
2 = contig-merging/first-round.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.service import AssemblyService, JobSpec

BACKENDS = ("serial", "multiprocess")

#: Sized so a run takes several seconds on one core: long enough for a
#: sub-second lease to expire mid-run, short enough for a tight matrix.
GENOME_LENGTH = 20_000
SEED = 13
K = 17


def chaos_spec(backend: str, **retry) -> JobSpec:
    merged = {"max_attempts": 3, "backoff_seconds": 0.05}
    merged.update(retry)
    return JobSpec(
        input={"mode": "simulate", "genome_length": GENOME_LENGTH, "seed": SEED},
        config={"k": K, "backend": backend, "num_workers": 2},
        retry=merged,
    )


@pytest.fixture(scope="module")
def reference_contigs(tmp_path_factory):
    """Unfaulted direct library runs: the byte-for-byte ground truth."""
    from repro.assembler import PPAAssembler

    directory = tmp_path_factory.mktemp("chaos-reference")
    references = {}
    for backend in BACKENDS:
        spec = chaos_spec(backend)
        result = PPAAssembler(spec.assembly_config()).assemble(
            spec.materialize().reads
        )
        path = directory / f"{backend}.fasta"
        result.write_fasta(path)
        references[backend] = path.read_text()
    return references


def run_chaos(
    tmp_path,
    monkeypatch,
    plan,
    spec,
    lease_seconds=0.6,
    timeout=240.0,
):
    """Run one faulted job to a terminal state; no service restarts.

    Returns ``(record, event_types, contigs_text)`` — contigs None
    unless the job succeeded.
    """
    monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan))
    service = AssemblyService(
        tmp_path / "chaos-data",
        num_workers=1,
        port=0,
        poll_interval=0.05,
        lease_seconds=lease_seconds,
        reap_interval=0.1,
        drain_timeout=10.0,
    )
    service.start()
    try:
        record = service.submit(spec)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            current = service.store.get(record.id)
            if current.is_terminal:
                break
            time.sleep(0.05)
        else:
            raise AssertionError(
                f"chaos job stuck in {current.state} after {timeout}s; "
                f"events: {[e.type for e in service.store.events(record.id)]}"
            )
        events = [event.type for event in service.store.events(record.id)]
        contigs = None
        if current.state == "succeeded":
            contigs = (Path(current.result_dir) / "contigs.fasta").read_text()
        return current, events, contigs
    finally:
        service.stop(wait=True)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_worker_mid_job_reclaims_and_retries(
    tmp_path, monkeypatch, backend, reference_contigs
):
    # SIGKILL the worker process as stage 2 of attempt 1 starts: the
    # supervisor must notice the death, reclaim the lease immediately,
    # respawn the slot, and the retry must resume from the surviving
    # checkpoints to the exact same contigs.
    plan = [{"kind": "kill_worker", "stage": 2, "attempts": [1]}]
    record, events, contigs = run_chaos(
        tmp_path, monkeypatch, plan, chaos_spec(backend)
    )
    assert record.state == "succeeded"
    assert record.attempts == 2
    assert "recovered" in events
    assert "stage-skipped" in events  # the retry resumed, not recomputed
    assert contigs == reference_contigs[backend]


@pytest.mark.parametrize("backend", BACKENDS)
def test_stalled_heartbeat_is_fenced_by_the_reaper(
    tmp_path, monkeypatch, backend, reference_contigs
):
    # Attempt 1 computes but never renews its lease: the reaper must
    # expire the lease mid-run, reclaim the job, and fence the stalled
    # worker out (its late writes are refused); attempt 2 heartbeats
    # normally and finishes.
    plan = [{"kind": "stall_heartbeat", "attempts": [1]}]
    record, events, contigs = run_chaos(
        tmp_path, monkeypatch, plan, chaos_spec(backend), lease_seconds=0.5
    )
    assert record.state == "succeeded"
    assert record.attempts >= 2
    assert "recovered" in events
    assert contigs == reference_contigs[backend]


@pytest.mark.parametrize("backend", BACKENDS)
def test_hung_stage_is_killed_by_the_watchdog(
    tmp_path, monkeypatch, backend, reference_contigs
):
    # Attempt 1 wedges forever inside stage 1; the per-stage timeout
    # must record the failure (with retry accounting) and kill the
    # worker process — the only way out of a hung native call.  The
    # timeout must clear the slowest *legitimate* stage with a wide
    # margin — a couple of seconds of real work here, but a loaded
    # single-core CI box can stretch that several-fold, and a retry
    # that times out on honest work poisons the job — while still
    # ending the injected infinite hang.
    plan = [{"kind": "hang_stage", "stage": 1, "attempts": [1]}]
    record, events, contigs = run_chaos(
        tmp_path,
        monkeypatch,
        plan,
        chaos_spec(backend, stage_timeout_seconds=30.0),
    )
    assert record.state == "succeeded"
    assert record.attempts == 2
    assert "timeout" in events
    assert "retry-scheduled" in events
    assert contigs == reference_contigs[backend]


@pytest.mark.parametrize("backend", BACKENDS)
def test_corrupt_checkpoint_degrades_to_an_earlier_one(
    tmp_path, monkeypatch, backend, reference_contigs
):
    # Attempt 1 corrupts the stage-1 checkpoint, then dies at stage 2.
    # The retry must detect the corruption, fall back to the stage-0
    # checkpoint, recompute stage 1 — and still land byte-identical.
    plan = [
        {
            "kind": "corrupt_checkpoint",
            "stage": "contig-labeling/kmers",
            "attempts": [1],
        },
        {"kind": "kill_worker", "stage": 2, "attempts": [1]},
    ]
    record, events, contigs = run_chaos(
        tmp_path, monkeypatch, plan, chaos_spec(backend)
    )
    assert record.state == "succeeded"
    assert record.attempts == 2
    assert "recovered" in events
    assert contigs == reference_contigs[backend]


@pytest.mark.parametrize("backend", BACKENDS)
def test_transient_error_retries_in_place(
    tmp_path, monkeypatch, backend, reference_contigs
):
    # A raised (not fatal) error must go through fail_attempt: the
    # worker process survives, the job is requeued with backoff, and
    # the same worker runs the successful retry.
    plan = [{"kind": "raise_error", "stage": 1, "attempts": [1]}]
    record, events, contigs = run_chaos(
        tmp_path, monkeypatch, plan, chaos_spec(backend)
    )
    assert record.state == "succeeded"
    assert record.attempts == 2
    assert "retry-scheduled" in events
    assert "recovered" not in events  # no lease was ever lost
    assert contigs == reference_contigs[backend]


def test_slow_store_writes_change_nothing(
    tmp_path, monkeypatch, reference_contigs
):
    # Widening every event-write race window must not change results.
    plan = [{"kind": "delay_store_writes", "seconds": 0.01}]
    record, events, contigs = run_chaos(
        tmp_path, monkeypatch, plan, chaos_spec("serial")
    )
    assert record.state == "succeeded"
    assert record.attempts == 1
    assert contigs == reference_contigs["serial"]


def test_deterministic_failure_exhausts_the_budget_and_poisons(
    tmp_path, monkeypatch
):
    # A fault on *every* attempt: the service must retry exactly
    # max_attempts times, record the schedule, then quarantine the job
    # as poisoned instead of crash-looping forever.
    plan = [{"kind": "raise_error", "stage": 0}]
    record, events, contigs = run_chaos(
        tmp_path, monkeypatch, plan, chaos_spec("serial", max_attempts=2)
    )
    assert record.state == "poisoned"
    assert record.attempts == 2
    assert "poisoned after 2 attempts" in record.error
    assert contigs is None
    assert events.count("retry-scheduled") == 1
    assert events[-1] == "poisoned"
