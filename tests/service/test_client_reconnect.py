"""Client resilience: ``wait()`` must survive a service replica bounce.

Jobs are durable, so the client's poll loop treats "nothing answered"
(status 0) as retryable within a bounded reconnect window, while real
HTTP answers (404, 409) still raise immediately.  Unit tests fake the
transport; the integration test actually bounces a service under a
live ``wait()``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceClientError
from repro.service import AssemblyService, JobSpec, ServiceClient


def make_spec(genome_length: int = 2_000, seed: int = 1, k: int = 15) -> JobSpec:
    return JobSpec(
        input={"mode": "simulate", "genome_length": genome_length, "seed": seed},
        config={"k": k, "num_workers": 2},
    )


class FlakyClient(ServiceClient):
    """Fails the first ``failures`` requests with a connection error."""

    def __init__(self, base_url: str, failures: int) -> None:
        super().__init__(base_url)
        self.failures = failures
        self.attempts = 0

    def _request(self, method, path, payload=None, decode_json=True):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise ServiceClientError("could not reach the service", status=0)
        return super()._request(method, path, payload, decode_json)


def test_wait_retries_connection_failures(service, tiny_spec):
    client = ServiceClient(service.base_url)
    job = client.submit(tiny_spec)

    flaky = FlakyClient(service.base_url, failures=3)
    status = flaky.wait(job["id"], timeout=120, reconnect_backoff=0.05)
    assert status["job"]["state"] == "succeeded"
    assert flaky.attempts > 3  # it retried through the outage


def test_wait_gives_up_after_the_reconnect_window(service, tiny_spec):
    client = ServiceClient(service.base_url)
    job = client.submit(tiny_spec)

    always_down = FlakyClient(service.base_url, failures=10**9)
    started = time.monotonic()
    with pytest.raises(ServiceClientError) as excinfo:
        always_down.wait(
            job["id"], reconnect_window=0.3, reconnect_backoff=0.05
        )
    assert "unreachable" in str(excinfo.value)
    assert time.monotonic() - started < 5.0  # bounded, not forever


def test_wait_raises_real_http_errors_immediately(service):
    # A 404 means the server answered; retrying would just repeat it.
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceClientError) as excinfo:
        client.wait("0" * 32, timeout=5)
    assert excinfo.value.status == 404


def test_wait_survives_a_replica_bounce(tmp_path):
    # Integration: kill the service mid-wait, restart it on the same
    # port and data dir; the client keeps polling through the outage
    # and sees the resumed job succeed.  submit --wait across a deploy.
    spec = make_spec(genome_length=20_000, seed=13, k=17)
    first = AssemblyService(
        tmp_path / "bounce-data", num_workers=1, port=0, poll_interval=0.05,
        lease_seconds=1.0, reap_interval=0.2,
    )
    first.start()
    port = first.port
    client = ServiceClient(first.base_url)
    job = client.submit(spec)

    outcome = {}

    def waiter():
        try:
            outcome["status"] = client.wait(
                job["id"], timeout=240, reconnect_backoff=0.05
            )
        except Exception as exc:  # noqa: BLE001 — surfaced by the assert below
            outcome["error"] = exc

    thread = threading.Thread(target=waiter)
    thread.start()
    try:
        # Wait for the job to actually start, then bounce the replica.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if first.store.get(job["id"]).state == "running":
                break
            time.sleep(0.05)
        first.stop(wait=False)

        second = AssemblyService(
            tmp_path / "bounce-data", num_workers=1, host="127.0.0.1",
            port=port, poll_interval=0.05, lease_seconds=1.0, reap_interval=0.2,
        )
        second.start()
        try:
            thread.join(timeout=240)
            assert not thread.is_alive(), "wait() never returned"
            assert "error" not in outcome, outcome.get("error")
            assert outcome["status"]["job"]["state"] == "succeeded"
        finally:
            second.stop(wait=True)
    finally:
        thread.join(timeout=5)
