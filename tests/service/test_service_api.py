"""REST API round trips: everything a client can reach over HTTP.

Runs a real :class:`AssemblyService` on a loopback port and talks to it
exclusively through :class:`~repro.service.client.ServiceClient`, so the
wire format, the status codes, and the client's decoding are all under
test at once.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.errors import ServiceClientError
from repro.service import JobSpec, ServiceClient

def make_spec(genome_length: int = 2_000, seed: int = 1, k: int = 15, **config) -> JobSpec:
    merged = {"k": k, "num_workers": 2}
    merged.update(config)
    return JobSpec(
        input={"mode": "simulate", "genome_length": genome_length, "seed": seed},
        config=merged,
    )


@pytest.fixture()
def client(service) -> ServiceClient:
    return ServiceClient(service.base_url)


def test_health_endpoint(client, service):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert health["worker_plane"] == service.worker_plane
    assert health["lease_seconds"] == service.store.lease_seconds
    assert isinstance(health["worker_pids"], list)
    if service.worker_plane == "process":
        assert len(health["worker_pids"]) == 2
    assert set(health["counts"]) == {
        "queued", "running", "succeeded", "failed", "cancelled", "poisoned",
    }


def test_submit_poll_result_fetch_cycle(client, tiny_spec):
    job = client.submit(tiny_spec)
    assert job["state"] in ("queued", "running")

    status = client.wait(job["id"], timeout=120)
    assert status["job"]["state"] == "succeeded"
    progress = status["progress"]
    assert progress["completed_stages"] == progress["total_stages"]
    assert progress["current_stage"] is None

    result = client.result(job["id"])
    assert result["job_id"] == job["id"]
    assert result["contigs"]["count"] >= 1
    assert result["schema_version"] == 1

    fasta = client.contigs_fasta(job["id"])
    assert fasta.startswith(">contig_0")


def test_wait_streams_every_event_exactly_once(client, tiny_spec):
    job = client.submit(tiny_spec)
    seen = []
    client.wait(job["id"], timeout=120, on_event=seen.append)
    seqs = [event["seq"] for event in seen]
    assert seqs == sorted(seqs)
    assert len(seqs) == len(set(seqs))
    types = [event["type"] for event in seen]
    assert types[0] == "submitted"
    assert types[-1] == "succeeded"
    assert "stage-start" in types and "stage-end" in types and "checkpoint" in types


def test_idempotent_submission_over_http(client, tiny_spec):
    first = client.submit(tiny_spec, idempotency_key="http-once")
    second = client.submit(tiny_spec, idempotency_key="http-once")
    assert second["id"] == first["id"]


def test_bare_spec_body_is_accepted(service, tiny_spec):
    # The curl quickstart posts the spec without an envelope.
    body = json.dumps(tiny_spec.to_dict()).encode()
    request = urllib.request.Request(
        service.base_url + "/jobs",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        assert response.status == 201
        payload = json.loads(response.read())
    assert payload["created"] is True
    assert payload["job"]["state"] in ("queued", "running")


def test_listing_and_state_filter(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)
    everything = client.list_jobs()
    assert any(entry["id"] == job["id"] for entry in everything)
    succeeded = client.list_jobs(state="succeeded")
    assert any(entry["id"] == job["id"] for entry in succeeded)
    assert client.list_jobs(state="failed") == []


def test_cancel_over_http(client):
    # Enough work that cancellation lands while the job is alive.
    slow = make_spec(genome_length=30_000, seed=6, k=17)
    job = client.submit(slow)
    cancelled = client.cancel(job["id"])
    assert cancelled["state"] in ("cancelled", "running")
    final = client.wait(job["id"], timeout=120)
    assert final["job"]["state"] == "cancelled"


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client.status("0" * 32)
    assert excinfo.value.status == 404


def test_result_of_unfinished_job_is_409(client):
    job = client.submit(make_spec(genome_length=30_000, seed=7, k=17))
    with pytest.raises(ServiceClientError) as excinfo:
        client.result(job["id"])
    assert excinfo.value.status == 409
    client.cancel(job["id"])
    client.wait(job["id"], timeout=120)


def test_scaffolds_of_unscaffolded_job_is_409(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)
    with pytest.raises(ServiceClientError) as excinfo:
        client.scaffolds_fasta(job["id"])
    assert excinfo.value.status == 409


def test_invalid_spec_is_400(client):
    bad = JobSpec.__new__(JobSpec)  # bypass validation client-side
    bad.input = {"mode": "simulate", "genome_length": 1000}
    bad.config = {"k": 16}  # even k is rejected by AssemblyConfig
    bad.min_contig = 0
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(bad)
    assert excinfo.value.status == 400
    assert "odd" in str(excinfo.value)


def test_bad_state_filter_is_400(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client.list_jobs(state="bogus")
    assert excinfo.value.status == 400


def test_scaffold_without_pairing_input_is_rejected(client):
    spec = JobSpec.__new__(JobSpec)
    spec.input = {"mode": "inline", "reads": [["r0", "ACGTACGTACGT"]]}
    spec.config = {"k": 15, "scaffold": True}
    spec.min_contig = 0
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(spec)
    assert excinfo.value.status == 400
    assert "pairing" in str(excinfo.value)


def test_job_progress_counts_branch_stages_once():
    # A BranchStage fires hooks for itself AND its inner stages with
    # the same schedule index; progress must not overshoot the total.
    from repro.service.api import job_progress
    from repro.service.store import JobEvent

    def event(seq, type, **payload):
        return JobEvent(job_id="j", seq=seq, created_at=0.0, type=type, payload=payload)

    events = [
        event(1, "submitted"),
        event(2, "started"),
        event(3, "stage-start", stage="dbg-construction", index=0, total=2),
        event(4, "stage-end", stage="dbg-construction", index=0, total=2),
        event(5, "stage-start", stage="scaffolding", index=1, total=2),
        event(6, "stage-start", stage="scaffolding/paired-end", index=1, total=2),
        event(7, "stage-end", stage="scaffolding/paired-end", index=1, total=2),
        event(8, "stage-end", stage="scaffolding", index=1, total=2),
        event(9, "succeeded"),
    ]
    progress = job_progress(events)
    assert progress == {
        "completed_stages": 2,
        "total_stages": 2,
        "current_stage": None,
    }


def test_malformed_simulate_spec_is_rejected_at_submit(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client._request(
            "POST", "/jobs", payload={"input": {"mode": "simulate"}, "config": {}}
        )
    assert excinfo.value.status == 400
    assert "genome_length" in str(excinfo.value)


def test_keepalive_connection_survives_post_with_unread_body(service, tiny_spec):
    # Routes that ignore the request body (cancel) must still drain it:
    # with HTTP/1.1 keep-alive, leftover bytes would be parsed as the
    # next request line on the same connection.
    import socket

    job = service.submit(tiny_spec)
    body = b'{"ignored": true}'
    cancel = (
        f"POST /jobs/{job.id}/cancel HTTP/1.1\r\n"
        f"Host: x\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body
    health = b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"

    with socket.create_connection(("127.0.0.1", service.port), timeout=10) as sock:
        sock.sendall(cancel)
        first = b""
        while b"\r\n\r\n" not in first:
            first += sock.recv(4096)
        assert first.startswith(b"HTTP/1.1 200"), first.splitlines()[0]
        sock.sendall(health)
        rest = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            rest += chunk
    assert b"HTTP/1.1 200" in rest, rest.splitlines()[:1]
    assert b'"status"' in rest


def test_unknown_route_is_404(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404


def test_inline_reads_round_trip(client):
    # Inline mode needs no shared filesystem: embed reads, get contigs.
    from repro.dna import simulate_dataset

    _genome, reads = simulate_dataset(genome_length=2_000, seed=11)
    spec = JobSpec(
        input={
            "mode": "inline",
            "reads": [[read.name, read.sequence] for read in reads],
        },
        config={"k": 15, "num_workers": 2},
    )
    job = client.submit(spec)
    final = client.wait(job["id"], timeout=120)
    assert final["job"]["state"] == "succeeded"
    assert client.result(job["id"])["contigs"]["count"] >= 1
