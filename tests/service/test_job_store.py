"""JobStore semantics: the durable queue under the service.

Everything here runs against the SQLite store directly — no workers,
no HTTP — so each property (ordering, idempotency, transitions,
events, recovery) is pinned at the layer that owns it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import JobNotFoundError, JobStateError
from repro.service import (
    STATE_CANCELLED,
    STATE_POISONED,
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUCCEEDED,
    JobSpec,
    JobStore,
)


def make_spec(genome_length: int = 2_000, seed: int = 1, k: int = 15, **config) -> JobSpec:
    merged = {"k": k, "num_workers": 2}
    merged.update(config)
    return JobSpec(
        input={"mode": "simulate", "genome_length": genome_length, "seed": seed},
        config=merged,
    )


@pytest.fixture()
def store(tmp_path):
    instance = JobStore(tmp_path / "jobs.sqlite3")
    yield instance
    instance.close()


def test_submit_and_get_roundtrip(store):
    record = store.submit(make_spec(seed=7), priority=3)
    fetched = store.get(record.id)
    assert fetched.state == STATE_QUEUED
    assert fetched.priority == 3
    assert fetched.spec.input["seed"] == 7
    assert fetched.spec.config["k"] == 15
    assert not fetched.is_terminal


def test_get_unknown_job_raises(store):
    with pytest.raises(JobNotFoundError):
        store.get("0" * 32)


def test_claim_order_is_priority_then_fifo(store):
    low = store.submit(make_spec(seed=1), priority=0)
    high = store.submit(make_spec(seed=2), priority=5)
    mid_first = store.submit(make_spec(seed=3), priority=1)
    mid_second = store.submit(make_spec(seed=4), priority=1)

    claimed = [store.claim_next("w").id for _ in range(4)]
    assert claimed == [high.id, mid_first.id, mid_second.id, low.id]
    assert store.claim_next("w") is None


def test_claim_marks_running_and_counts_attempts(store):
    record = store.submit(make_spec())
    claimed = store.claim_next("worker-0")
    assert claimed.id == record.id
    assert claimed.state == STATE_RUNNING
    assert claimed.worker == "worker-0"
    assert claimed.attempts == 1
    assert claimed.started_at is not None


def test_concurrent_claims_never_hand_out_the_same_job(store):
    for seed in range(8):
        store.submit(make_spec(seed=seed))
    claimed = []
    lock = threading.Lock()

    def claim(worker: str) -> None:
        while True:
            record = store.claim_next(worker)
            if record is None:
                return
            with lock:
                claimed.append(record.id)

    threads = [threading.Thread(target=claim, args=(f"w{i}",)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(claimed) == 8
    assert len(set(claimed)) == 8


def test_idempotency_key_dedups(store):
    first = store.submit(make_spec(), idempotency_key="once")
    again = store.submit(make_spec(), idempotency_key="once")
    assert again.id == first.id
    assert store.find_by_key("once").id == first.id
    assert store.find_by_key("never") is None
    # A different key is a different job.
    other = store.submit(make_spec(), idempotency_key="twice")
    assert other.id != first.id


def test_idempotency_key_with_a_different_spec_is_refused(store):
    store.submit(make_spec(seed=1), idempotency_key="reused")
    with pytest.raises(JobStateError) as excinfo:
        store.submit(make_spec(seed=2), idempotency_key="reused")
    assert "different spec" in str(excinfo.value)


def test_job_to_dict_summarises_inline_payloads(store):
    spec = JobSpec(
        input={"mode": "inline", "reads": [["r0", "ACGTACGTACGTACGTACGT"]]},
        config={"k": 15},
    )
    record = store.submit(spec)
    reported = record.to_dict()["spec"]["input"]
    assert "reads" not in reported  # megabytes must not echo on every poll
    assert reported["num_reads"] == 1
    # The stored spec keeps the payload — the worker materialises from it.
    assert store.get(record.id).spec.input["reads"] == [["r0", "ACGTACGTACGTACGTACGT"]]


def test_submit_detecting_reports_exactly_one_creation(store):
    first, created = store.submit_detecting(make_spec(), idempotency_key="flag")
    assert created is True
    again, created_again = store.submit_detecting(make_spec(), idempotency_key="flag")
    assert created_again is False
    assert again.id == first.id
    # Under concurrency, exactly one submitter wins the creation.
    results = []
    lock = threading.Lock()

    def submit() -> None:
        outcome = store.submit_detecting(make_spec(), idempotency_key="race")
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=submit) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sum(1 for _, created in results if created) == 1
    assert len({record.id for record, _ in results}) == 1


def test_terminal_transitions(store):
    record = store.submit(make_spec())
    store.claim_next("w")
    store.mark_succeeded(record.id, result_dir="/tmp/x")
    final = store.get(record.id)
    assert final.state == STATE_SUCCEEDED
    assert final.result_dir == "/tmp/x"
    assert final.finished_at is not None
    with pytest.raises(JobStateError):
        store.mark_failed(record.id, "too late")


def test_cancel_queued_job_is_immediate(store):
    record = store.submit(make_spec())
    cancelled = store.request_cancel(record.id)
    assert cancelled.state == STATE_CANCELLED
    assert store.claim_next("w") is None


def test_cancel_running_job_sets_the_cooperative_flag(store):
    record = store.submit(make_spec())
    store.claim_next("w")
    after = store.request_cancel(record.id)
    assert after.state == STATE_RUNNING
    assert after.cancel_requested
    assert store.cancel_requested(record.id)


def test_cancel_terminal_job_is_a_noop(store):
    record = store.submit(make_spec())
    store.claim_next("w")
    store.mark_succeeded(record.id)
    after = store.request_cancel(record.id)
    assert after.state == STATE_SUCCEEDED


def test_recovery_gives_up_after_the_attempt_limit(tmp_path):
    # A job that keeps taking the process down must not crash-loop the
    # service forever: recovery quarantines it as poisoned once the
    # claim count reaches the store's max_attempts.
    store = JobStore(tmp_path / "loop.sqlite3", max_attempts=2, backoff_seconds=0.0)
    try:
        record = store.submit(make_spec())
        for round_index in range(2):
            claimed = store.claim_next("w", lease_seconds=0.0)
            assert claimed.id == record.id
            time.sleep(0.01)  # let the zero-second lease lapse
            recovered = store.recover_interrupted()  # simulated crash
            if round_index == 0:
                assert [r.id for r in recovered] == [record.id]
                assert recovered[0].state == STATE_QUEUED
        assert [r.id for r in recovered] == [record.id]
        final = store.get(record.id)
        assert final.state == STATE_POISONED
        assert "poisoned after 2 attempts" in final.error
        assert store.claim_next("w") is None  # quarantined, not crash-looping
    finally:
        store.close()


def test_recover_interrupted_requeues_running_jobs(tmp_path):
    store = JobStore(tmp_path / "recover.sqlite3", backoff_seconds=0.0)
    try:
        interrupted = store.submit(make_spec(seed=1))
        untouched = store.submit(make_spec(seed=2))
        store.claim_next("w", lease_seconds=0.0)  # interrupted goes running
        time.sleep(0.01)

        recovered = store.recover_interrupted()
        assert [record.id for record in recovered] == [interrupted.id]
        assert store.get(interrupted.id).state == STATE_QUEUED
        assert store.get(untouched.id).state == STATE_QUEUED
        # The recovery is visible in the event log, and the next claim
        # counts as a second attempt.
        types = [event.type for event in store.events(interrupted.id)]
        assert types == ["submitted", "started", "recovered"]
        assert store.claim_next("w").attempts >= 1
    finally:
        store.close()


def test_recover_interrupted_leaves_live_leases_alone(store):
    # Startup recovery must be replica-safe: a job leased by a live
    # sibling service keeps running.
    leased = store.submit(make_spec(seed=1))
    claimed = store.claim_next("sibling", lease_seconds=60.0)
    assert claimed.id == leased.id
    assert store.recover_interrupted() == []
    assert store.get(leased.id).state == STATE_RUNNING


def test_event_log_is_append_only_and_cursorable(store):
    record = store.submit(make_spec())
    store.append_event(record.id, "stage-start", {"stage": "x"})
    store.append_event(record.id, "stage-end", {"stage": "x", "seconds": 0.1})
    events = store.events(record.id)
    assert [event.seq for event in events] == [1, 2, 3]
    assert [event.type for event in events] == ["submitted", "stage-start", "stage-end"]
    tail = store.events(record.id, after=2)
    assert [event.type for event in tail] == ["stage-end"]
    with pytest.raises(JobNotFoundError):
        store.events("f" * 32)


def test_list_jobs_filters_by_state(store):
    first = store.submit(make_spec(seed=1))
    second = store.submit(make_spec(seed=2))
    store.claim_next("w")  # same priority, so FIFO claims `first`
    assert {job.state for job in store.list_jobs()} == {STATE_QUEUED, STATE_RUNNING}
    assert [job.id for job in store.list_jobs(state=STATE_RUNNING)] == [first.id]
    assert [job.id for job in store.list_jobs(state=STATE_QUEUED)] == [second.id]
    with pytest.raises(JobStateError):
        store.list_jobs(state="exploded")


def test_counts_are_zero_filled(store):
    counts = store.counts()
    assert counts == {
        "queued": 0, "running": 0, "succeeded": 0, "failed": 0,
        "cancelled": 0, "poisoned": 0,
    }
    store.submit(make_spec())
    assert store.counts()["queued"] == 1


# ----------------------------------------------------------------------
# leases, heartbeats and fencing
# ----------------------------------------------------------------------
def test_claim_grants_a_lease_and_heartbeat_renews_it(store):
    record = store.submit(make_spec())
    claimed = store.claim_next("w", lease_seconds=5.0)
    assert claimed.lease_expires_at is not None
    first_expiry = claimed.lease_expires_at
    time.sleep(0.02)
    assert store.heartbeat(record.id, claimed.lease_token) is True
    assert store.get(record.id).lease_expires_at > first_expiry
    # A stale token never renews: the worker has been fenced.
    assert store.heartbeat(record.id, "not-the-token") is False


def test_reap_expired_reclaims_only_lapsed_leases(store):
    expired = store.submit(make_spec(seed=1))
    live = store.submit(make_spec(seed=2))
    store.claim_next("dead-worker", lease_seconds=0.0)   # FIFO: claims `expired`
    store.claim_next("live-worker", lease_seconds=60.0)  # claims `live`
    time.sleep(0.01)

    reclaims = store.reap_expired()
    assert [reclaim.record.id for reclaim in reclaims] == [expired.id]
    assert reclaims[0].previous_owner == "dead-worker"
    assert reclaims[0].outcome == "requeued"
    assert store.get(expired.id).state == STATE_QUEUED
    assert store.get(live.id).state == STATE_RUNNING


def test_finish_attempt_is_fenced_by_the_lease_token(store):
    record = store.submit(make_spec())
    claimed = store.claim_next("zombie", lease_seconds=0.0)
    time.sleep(0.01)
    store.reap_expired()  # the lease lapses; the job goes back to queued
    # The zombie's late success must not clobber the reclaimed job.
    done = store.finish_attempt(record.id, claimed.lease_token, STATE_SUCCEEDED)
    assert done is False
    assert store.get(record.id).state == STATE_QUEUED


def test_reaper_requeue_is_fenced_against_a_concurrent_finish(tmp_path):
    # Two stores on one file model the reaper and a worker process.
    # The reaper's SELECT snapshots the job as running with a lapsed
    # lease; the worker's token-fenced finish commits before the
    # reaper's UPDATE.  The guarded UPDATE must hit zero rows — not
    # flip the just-succeeded job back to queued and run it twice.
    path = tmp_path / "race.sqlite3"
    reaper_store = JobStore(path)
    worker_store = JobStore(path)
    try:
        record = reaper_store.submit(make_spec())
        claimed = worker_store.claim_next("w@1", lease_seconds=0.0)
        time.sleep(0.01)
        with reaper_store._lock:
            stale_row = reaper_store._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (record.id,)
            ).fetchone()
        assert worker_store.finish_attempt(
            record.id, claimed.lease_token, STATE_SUCCEEDED
        )
        with reaper_store._lock:
            outcome = reaper_store._retry_or_quarantine_locked(
                stale_row,
                error="lease expired",
                event_type="recovered",
                now=time.time(),
            )
            reaper_store._connection.commit()
        assert outcome is None
        assert reaper_store.get(record.id).state == STATE_SUCCEEDED
    finally:
        worker_store.close()
        reaper_store.close()


def test_reaper_quarantine_is_fenced_against_a_concurrent_finish(tmp_path):
    # Same interleaving as above, at the attempt limit: the stale
    # snapshot would poison the job, but it already succeeded.
    path = tmp_path / "race.sqlite3"
    reaper_store = JobStore(path, max_attempts=1)
    worker_store = JobStore(path, max_attempts=1)
    try:
        record = reaper_store.submit(make_spec())
        claimed = worker_store.claim_next("w@1", lease_seconds=0.0)
        time.sleep(0.01)
        with reaper_store._lock:
            stale_row = reaper_store._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (record.id,)
            ).fetchone()
        assert worker_store.finish_attempt(
            record.id, claimed.lease_token, STATE_SUCCEEDED
        )
        with reaper_store._lock:
            outcome = reaper_store._retry_or_quarantine_locked(
                stale_row,
                error="lease expired",
                event_type="recovered",
                now=time.time(),
            )
            reaper_store._connection.commit()
        assert outcome is None
        assert reaper_store.get(record.id).state == STATE_SUCCEEDED
    finally:
        worker_store.close()
        reaper_store.close()


def test_reap_expired_reports_nothing_for_a_job_that_just_finished(store):
    record = store.submit(make_spec())
    claimed = store.claim_next("w", lease_seconds=0.0)
    time.sleep(0.01)
    assert store.finish_attempt(record.id, claimed.lease_token, STATE_SUCCEEDED)
    assert store.reap_expired() == []
    assert store.get(record.id).state == STATE_SUCCEEDED


def test_reclaim_worker_takes_back_only_that_workers_jobs(store):
    mine = store.submit(make_spec(seed=1))
    theirs = store.submit(make_spec(seed=2))
    store.claim_next("worker-0@100", lease_seconds=60.0)
    store.claim_next("worker-1@101", lease_seconds=60.0)

    reclaims = store.reclaim_worker("worker-0@100", reason="worker-died")
    assert [reclaim.record.id for reclaim in reclaims] == [mine.id]
    assert store.get(mine.id).state == STATE_QUEUED
    assert store.get(theirs.id).state == STATE_RUNNING


# ----------------------------------------------------------------------
# retry, backoff and quarantine
# ----------------------------------------------------------------------
def test_fail_attempt_requeues_then_poisons(tmp_path):
    store = JobStore(tmp_path / "retry.sqlite3", max_attempts=2, backoff_seconds=0.0)
    try:
        record = store.submit(make_spec())
        first = store.claim_next("w")
        assert store.fail_attempt(record.id, first.lease_token, "boom") == "requeued"
        assert store.get(record.id).state == STATE_QUEUED

        second = store.claim_next("w")
        assert second.attempts == 2
        assert store.fail_attempt(record.id, second.lease_token, "boom") == "poisoned"
        final = store.get(record.id)
        assert final.state == STATE_POISONED
        assert final.is_terminal
        assert "poisoned after 2 attempts" in final.error
        assert "boom" in final.error
        types = [event.type for event in store.events(record.id)]
        assert "retry-scheduled" in types
        assert types[-1] == "poisoned"
    finally:
        store.close()


def test_fail_attempt_non_retryable_fails_immediately(store):
    record = store.submit(make_spec())
    claimed = store.claim_next("w")
    outcome = store.fail_attempt(
        record.id, claimed.lease_token, "bad spec", retryable=False
    )
    assert outcome == "failed"
    assert store.get(record.id).state == "failed"


def test_requeued_job_waits_out_its_backoff(tmp_path):
    store = JobStore(tmp_path / "backoff.sqlite3", max_attempts=5, backoff_seconds=30.0)
    try:
        record = store.submit(make_spec())
        claimed = store.claim_next("w")
        assert store.fail_attempt(record.id, claimed.lease_token, "flaky") == "requeued"
        requeued = store.get(record.id)
        assert requeued.state == STATE_QUEUED
        assert requeued.next_attempt_at is not None
        # The backoff gate keeps the hot job out of the claim loop.
        assert store.claim_next("w") is None
        events = {event.type: event.payload for event in store.events(record.id)}
        assert events["retry-scheduled"]["backoff_seconds"] > 0
    finally:
        store.close()


def test_spec_retry_budget_overrides_the_store_default(tmp_path):
    store = JobStore(tmp_path / "override.sqlite3", max_attempts=3, backoff_seconds=0.0)
    try:
        spec = make_spec()
        spec.retry = {"max_attempts": 1}
        record = store.submit(spec)
        claimed = store.claim_next("w")
        assert store.fail_attempt(record.id, claimed.lease_token, "boom") == "poisoned"
        assert store.get(record.id).state == STATE_POISONED
    finally:
        store.close()


def test_store_survives_reopen(tmp_path):
    path = tmp_path / "jobs.sqlite3"
    first = JobStore(path)
    record = first.submit(make_spec(seed=9), priority=2, idempotency_key="durable")
    first.close()

    reopened = JobStore(path)
    try:
        fetched = reopened.get(record.id)
        assert fetched.priority == 2
        assert fetched.idempotency_key == "durable"
        assert fetched.spec.input["seed"] == 9
    finally:
        reopened.close()
