"""The service's headline guarantee: ``kill -9`` loses no work.

A real server process is started with ``repro-assemble serve``, given a
job big enough to span many checkpointed stages, and SIGKILLed
mid-assembly.  A second server over the same data directory must
re-enqueue the interrupted job, resume it from its surviving
checkpoints, and deliver contigs *byte-identical* to an uninterrupted
in-process run of the same spec — on both execution backends.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
import pytest

from repro.assembler import PPAAssembler
from repro.service import JobSpec, ServiceClient

GENOME_LENGTH = 24_000
SEED = 13
K = 17


def _spec(backend: str) -> JobSpec:
    return JobSpec(
        input={"mode": "simulate", "genome_length": GENOME_LENGTH, "seed": SEED},
        config={"k": K, "num_workers": 2, "backend": backend},
    )


def _start_server(data_dir):
    """Start ``repro-assemble serve``; returns ``(process, base_url)``."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--data-dir", str(data_dir), "--port", "0", "--workers", "1",
            "--poll-interval", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=os.environ.copy(),
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            url = next(
                token for token in line.split() if token.startswith("http://")
            )
            return process, url
        if process.poll() is not None:
            break
        time.sleep(0.01)
    process.kill()
    raise AssertionError("server did not come up")


def _wait_for_checkpoint(client: ServiceClient, job_id: str) -> None:
    """Block until the job has checkpointed at least one stage."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        events = client.events(job_id)
        if any(event["type"] == "checkpoint" for event in events):
            return
        state = client.status(job_id)["job"]["state"]
        assert state in ("queued", "running"), (
            f"job reached {state} before it could be killed mid-assembly"
        )
        time.sleep(0.02)
    raise AssertionError("job never wrote a checkpoint")


@pytest.fixture(scope="module")
def uninterrupted_contigs() -> str:
    """Reference FASTA text from a direct, uninterrupted run."""
    spec = _spec("serial")
    material = spec.materialize()
    result = PPAAssembler(spec.assembly_config()).assemble(material.reads)
    import io

    from repro.dna.io_fastq import FastaRecord, write_fasta

    buffer = io.StringIO()
    records = [
        FastaRecord(name=f"contig_{index}_len_{len(sequence)}", sequence=sequence)
        for index, sequence in enumerate(result.contigs)
    ]
    write_fasta(records, buffer)
    return buffer.getvalue()


@pytest.mark.parametrize("backend", ["serial", "multiprocess"])
def test_kill_dash_nine_then_restart_completes_bit_identically(
    backend, tmp_path, uninterrupted_contigs
):
    data_dir = tmp_path / "data"
    process, url = _start_server(data_dir)
    job_id = None
    try:
        client = ServiceClient(url)
        job = client.submit(_spec(backend))
        job_id = job["id"]
        _wait_for_checkpoint(client, job_id)
    finally:
        # SIGKILL, not terminate: no cleanup handlers, no flushing —
        # the exact failure mode the checkpoints exist for.
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    assert job_id is not None

    process, url = _start_server(data_dir)
    try:
        client = ServiceClient(url)
        final = client.wait(job_id, timeout=300)
        assert final["job"]["state"] == "succeeded"
        assert final["job"]["attempts"] == 2

        types = [event["type"] for event in client.events(job_id)]
        assert "recovered" in types
        # The resumed attempt skipped the checkpointed prefix instead
        # of recomputing it.
        assert "stage-skipped" in types

        assert client.contigs_fasta(job_id) == uninterrupted_contigs

        metrics = client.result(job_id)
        assert metrics["contigs"]["count"] >= 1
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)


def test_restart_with_idle_store_recovers_nothing(tmp_path):
    # A clean shutdown leaves no running jobs; restart must not invent
    # recoveries.  Uses the in-process service for speed.
    from repro.service import AssemblyService

    data_dir = tmp_path / "data"
    first = AssemblyService(data_dir, num_workers=1, port=0, poll_interval=0.05)
    first.start()
    try:
        record = first.submit(_spec("serial"))
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            if first.store.get(record.id).is_terminal:
                break
            time.sleep(0.05)
        assert first.store.get(record.id).state == "succeeded"
    finally:
        first.stop()

    second = AssemblyService(data_dir, num_workers=1, port=0, poll_interval=0.05)
    assert second.store.recover_interrupted() == []
    second.store.close()
