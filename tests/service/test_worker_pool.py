"""Worker pool behaviour: bounded concurrency, artifacts, failure paths.

These tests drive the pool through the in-process service (no HTTP) —
the store is the observable surface: states, events and the per-job
timestamps the concurrency assertion is computed from.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.service import JobSpec


def make_spec(genome_length: int = 2_000, seed: int = 1, k: int = 15, **config) -> JobSpec:
    merged = {"k": k, "num_workers": 2}
    merged.update(config)
    return JobSpec(
        input={"mode": "simulate", "genome_length": genome_length, "seed": seed},
        config=merged,
    )


def _wait_terminal(service, job_ids, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        records = [service.store.get(job_id) for job_id in job_ids]
        if all(record.is_terminal for record in records):
            return records
        time.sleep(0.05)
    raise AssertionError(
        f"jobs did not finish within {timeout}s: "
        f"{[(r.id, r.state) for r in records]}"
    )


def test_more_submissions_than_workers_all_complete_with_bounded_overlap(service):
    # N = 6 simultaneous submissions against 2 workers (the acceptance
    # criterion's N > worker-count scenario).
    job_ids = [
        service.submit(make_spec(seed=seed)).id for seed in range(6)
    ]
    records = _wait_terminal(service, job_ids)
    assert all(record.state == "succeeded" for record in records)

    # At most `num_workers` jobs were ever running concurrently: sweep
    # over the recorded start/finish intervals.
    boundaries = []
    for record in records:
        assert record.started_at is not None and record.finished_at is not None
        boundaries.append((record.started_at, 1))
        boundaries.append((record.finished_at, -1))
    overlap = max_overlap = 0
    for _, delta in sorted(boundaries):
        overlap += delta
        max_overlap = max(max_overlap, overlap)
    assert 1 <= max_overlap <= service.pool.num_workers


def test_priorities_order_the_queue(service):
    # Freeze the pool by filling both workers, then submit the
    # contested batch: the high-priority job must start first.
    blockers = [service.submit(make_spec(seed=90 + i)).id for i in range(2)]
    low = service.submit(make_spec(seed=1), priority=0)
    high = service.submit(make_spec(seed=2), priority=10)
    records = _wait_terminal(service, blockers + [low.id, high.id])
    by_id = {record.id: record for record in records}
    assert by_id[high.id].started_at <= by_id[low.id].started_at


def test_successful_job_writes_artifacts(service, tiny_spec):
    record = service.submit(tiny_spec)
    (final,) = _wait_terminal(service, [record.id])
    assert final.state == "succeeded"
    result_dir = Path(final.result_dir)
    contigs = (result_dir / "contigs.fasta").read_text()
    assert contigs.startswith(">contig_0")
    metrics = json.loads((result_dir / "metrics.json").read_text())
    assert metrics["job_id"] == record.id
    assert metrics["contigs"]["count"] >= 1
    assert metrics["contigs"]["n50"] >= 1
    assert "ng50" in metrics["contigs"]  # simulate mode knows the genome size
    assert metrics["stage_seconds"]  # hooks measured every stage
    assert metrics["wall_seconds"] > 0
    # Checkpoints accumulated next to the artifacts (one per stage).
    assert list((result_dir / "checkpoints").glob("checkpoint-*.pkl"))


def test_scaffolded_job_writes_scaffold_artifacts(service):
    spec = JobSpec(
        input={
            "mode": "simulate",
            "genome_length": 6_000,
            "seed": 3,
            "insert_size": 400.0,
        },
        config={"k": 17, "num_workers": 2, "scaffold": True},
    )
    record = service.submit(spec)
    (final,) = _wait_terminal(service, [record.id])
    assert final.state == "succeeded"
    result_dir = Path(final.result_dir)
    assert (result_dir / "scaffolds.fasta").read_text().startswith(">scaffold_0")
    metrics = json.loads((result_dir / "metrics.json").read_text())
    assert metrics["scaffolds"] is not None
    assert metrics["scaffolds"]["count"] >= 1
    # The scaffolding BranchStage and its inner stage share an index;
    # reported progress must land exactly on the schedule length.
    from repro.service.api import job_progress

    progress = job_progress(service.store.events(record.id))
    assert progress["completed_stages"] == progress["total_stages"]


def test_persistently_failing_job_retries_then_quarantines(service, tmp_path):
    # A missing input file is not a ReproError, so the service treats it
    # as possibly transient (unmounted volume, slow NFS): it burns the
    # full attempt budget with backoff, then quarantines as poisoned
    # instead of crash-looping.
    spec = JobSpec(
        input={"mode": "fastq", "path": str(tmp_path / "missing.fastq")},
        config={"k": 15},
        retry={"max_attempts": 2, "backoff_seconds": 0.05},
    )
    record = service.submit(spec)
    (final,) = _wait_terminal(service, [record.id])
    assert final.state == "poisoned"
    assert final.attempts == 2
    assert "missing.fastq" in final.error
    assert "poisoned after 2 attempts" in final.error
    types = [event.type for event in service.store.events(record.id)]
    assert types[-1] == "poisoned"
    assert "retry-scheduled" in types
    # The retry schedule is auditable: the requeue event records the
    # backoff and when the job became claimable again.
    (retry_event,) = [
        event for event in service.store.events(record.id)
        if event.type == "retry-scheduled"
    ]
    assert retry_event.payload["backoff_seconds"] > 0
    assert retry_event.payload["next_attempt_at"] > 0
    assert retry_event.payload["attempt"] == 1


def test_running_job_cancels_at_the_next_stage_boundary(service):
    # Big enough that the run spans many stage boundaries.
    record = service.submit(make_spec(genome_length=30_000, seed=4, k=17))
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        events = service.store.events(record.id)
        if any(event.type == "stage-end" for event in events):
            break
        time.sleep(0.02)
    else:
        raise AssertionError("job never reached a stage boundary")
    service.store.request_cancel(record.id)
    (final,) = _wait_terminal(service, [record.id])
    assert final.state == "cancelled"
    types = [event.type for event in service.store.events(record.id)]
    assert "cancel-requested" in types
    assert types[-1] == "cancelled"
    # Cooperative means between stages: every started stage finished.
    starts = sum(1 for t in types if t == "stage-start")
    ends = sum(1 for t in types if t == "stage-end")
    assert starts == ends


def test_metrics_spool_concurrent_drains_never_double_merge(tmp_path):
    # The API server is threaded, so two /metrics scrapes can drain the
    # spool at once.  Claim-by-rename means every spooled delta merges
    # into exactly one scraper's registry — the sum over all scrapers
    # must equal what the workers pushed, never more.
    import threading

    from repro.service.worker import MetricsSpool
    from repro.telemetry import MetricsRegistry

    spool = MetricsSpool(tmp_path)
    source = MetricsRegistry()
    for _ in range(20):
        source.counter("spooled_total", "help").inc(5)
        spool.push(source)  # push drains, so each file carries a delta of 5

    registries = [MetricsRegistry() for _ in range(4)]
    barrier = threading.Barrier(len(registries))

    def scrape(registry):
        barrier.wait()
        spool.drain_into(registry)

    threads = [
        threading.Thread(target=scrape, args=(registry,))
        for registry in registries
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = sum(
        registry.counter("spooled_total", "help").read()
        for registry in registries
    )
    assert total == 100
    # Every file was consumed, claim files included.
    assert list(spool.directory.iterdir()) == []
