"""The service's observability endpoints: ``/metrics``, ``/jobs/<id>/trace``,
``/jobs/<id>/timeline``, ``/jobs/<id>/report`` and ``/dashboard``.

Scrapes a live service over HTTP (the same path a Prometheus collector
takes), checks the exposition text is well-formed and carries the core
series, walks a finished job's span tree and run timeline, and parses
the HTML surfaces (report, dashboard) for well-formedness.
"""

from __future__ import annotations

import re
import time
import xml.etree.ElementTree as ET
from urllib import request

import pytest

from repro.errors import ServiceClientError
from repro.service.api import PROMETHEUS_CONTENT_TYPE
from repro.service.client import ServiceClient

#: One sample line: ``name{labels} value`` with a finite or int value.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$|"
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$"
)


@pytest.fixture()
def client(service) -> ServiceClient:
    return ServiceClient(service.base_url)


def _assert_well_formed(text: str) -> None:
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"


def test_metrics_endpoint_scrapes_before_any_job(service, client):
    response = request.urlopen(service.base_url + "/metrics", timeout=10)
    assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
    text = response.read().decode("utf-8")
    _assert_well_formed(text)
    # Queue gauges sample the store at scrape time, so they exist (as
    # zero) before any job does; the scrape itself is the first HTTP
    # request metric.
    assert "repro_jobs_queued 0" in text
    assert "repro_jobs_running 0" in text
    # A request's own metrics land after its response is written, so
    # the *second* scrape sees the first one.
    text = client.metrics_text()
    assert "# TYPE repro_http_request_seconds histogram" in text
    assert 'repro_http_requests_total{method="GET",route="/metrics",status="200"} 1' in text


def test_metrics_carry_core_series_after_a_job(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)
    client.status(job["id"])  # one labeled /jobs/<id> request

    text = client.metrics_text()
    _assert_well_formed(text)
    for needle in (
        "# TYPE repro_pregel_messages_total counter",
        'repro_pregel_messages_total{job="',
        'repro_pregel_worker_messages_total{job="',
        "# TYPE repro_pregel_superstep_seconds histogram",
        "# TYPE repro_claim_latency_seconds histogram",
        "repro_claim_latency_seconds_count 1",
        "repro_jobs_submitted_total 1",
        'repro_jobs_completed_total{state="succeeded"} 1',
        'repro_workflow_stage_seconds_count{stage="',
        "# TYPE repro_checkpoint_write_seconds histogram",
        'repro_http_requests_total{method="GET",route="/jobs/<id>",status="200"}',
        'repro_http_request_seconds_bucket{method="POST",route="/jobs",le="+Inf"} 1',
    ):
        assert needle in text, f"missing from /metrics: {needle}"


def test_unknown_routes_share_one_bounded_metric_label(service, client):
    for path in ("/nope", "/jobs/feedfacefeedfacefeedfacefeedface/nope"):
        with pytest.raises(ServiceClientError):
            client._request("GET", path)
    # A request's metrics land after its response is written, so a fast
    # scrape can beat the bookkeeping of the requests above — re-scrape
    # briefly until both route labels have landed.
    deadline = time.monotonic() + 10.0
    while True:
        text = client.metrics_text()
        if (
            'route="<other>"' in text
            and 'route="/jobs/<id><other>"' in text
        ) or time.monotonic() >= deadline:
            break
        time.sleep(0.05)
    assert 'route="<other>"' in text
    assert 'route="/jobs/<id><other>"' in text
    assert "/nope" not in text


def test_trace_endpoint_returns_nested_span_tree(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)

    payload = client.trace(job["id"])
    assert set(payload) == {"generated_at", "trace"}
    root = payload["trace"]
    assert root["name"] == f"job:{job['id']}"
    assert root["attributes"]["outcome"] == "succeeded"
    assert root["status"] == "ok"

    (workflow,) = root["children"]
    assert workflow["name"] == "workflow:ppa-assembly"
    stage_names = [child["name"] for child in workflow["children"]]
    assert all(name.startswith("stage:") for name in stage_names)
    assert "stage:dbg-construction" in stage_names

    # Down the tree: stages hold pregel jobs hold supersteps hold workers.
    labeling = next(
        child for child in workflow["children"]
        if child["name"] == "stage:contig-labeling/kmers"
    )
    pregel = labeling["children"][0]
    assert pregel["name"].startswith("pregel:")
    superstep = pregel["children"][0]
    assert superstep["name"] == "superstep-0"
    assert superstep["attributes"]["messages_sent"] >= 0
    workers = [child["name"] for child in superstep["children"]]
    assert workers == ["worker-0", "worker-1"]  # tiny_spec: num_workers=2

    # One trace id everywhere.
    def walk(node):
        assert node["trace_id"] == root["trace_id"]
        for child in node["children"]:
            walk(child)

    walk(root)


def test_trace_of_unknown_job_is_404(client):
    with pytest.raises(ServiceClientError) as info:
        client.trace("0" * 32)
    assert info.value.status == 404


def test_trace_before_finish_is_409(service, client, tiny_spec):
    # Park the pool so the submitted job stays queued deterministically.
    service.pool.stop(wait=True)
    job = client.submit(tiny_spec)
    with pytest.raises(ServiceClientError) as info:
        client.trace(job["id"])
    assert info.value.status == 409
    assert "no trace yet" in str(info.value)


def test_timeline_endpoint_returns_merged_run_timeline(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)

    payload = client.timeline(job["id"])
    assert payload["job_id"] == job["id"]
    events = payload["events"]
    kinds = {event["kind"] for event in events}
    assert {"superstep", "stage-start", "stage-end", "sample"} <= kinds

    supersteps = [e for e in events if e["kind"] == "superstep"]
    assert supersteps
    for event in supersteps:
        assert event["messages_sent"] >= 0
        assert event["active_vertices"] >= 0
        assert "ledger_peak_bytes" in event
    # Ordered by timestamp (the file is written sorted).
    timestamps = [event["ts"] for event in events]
    assert timestamps == sorted(timestamps)


def test_timeline_error_contract(service, client, tiny_spec):
    with pytest.raises(ServiceClientError) as info:
        client.timeline("0" * 32)
    assert info.value.status == 404

    service.pool.stop(wait=True)
    job = client.submit(tiny_spec)
    with pytest.raises(ServiceClientError) as info:
        client.timeline(job["id"])
    assert info.value.status == 409
    assert "no timeline yet" in str(info.value)


def test_result_payload_carries_memory_block(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)
    result = client.result(job["id"])
    memory = result["memory"]
    assert memory["peak_rss_bytes"] > 0
    assert memory["spill_events_total"] >= 0
    assert memory["memory_budget_mb"] is None  # tiny_spec sets no budget


def test_report_endpoint_renders_wellformed_html(client, tiny_spec):
    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)

    html = client.report_html(job["id"])
    root = ET.fromstring(html)  # no DOCTYPE, void tags closed: XML-parseable
    assert root.tag == "html"
    assert "Span waterfall" in html
    assert "Resident set size" in html
    assert job["id"][:12] in html


def test_report_error_contract(service, client, tiny_spec):
    with pytest.raises(ServiceClientError) as info:
        client.report_html("0" * 32)
    assert info.value.status == 404

    service.pool.stop(wait=True)
    job = client.submit(tiny_spec)
    with pytest.raises(ServiceClientError) as info:
        client.report_html(job["id"])
    assert info.value.status == 409
    assert "no artifacts" in str(info.value)


def test_dashboard_lists_recent_jobs(client, tiny_spec):
    # The dashboard renders before any job exists...
    empty = client.dashboard_html()
    ET.fromstring(empty)
    assert "No jobs submitted yet" in empty

    job = client.submit(tiny_spec)
    client.wait(job["id"], timeout=120)
    html = client.dashboard_html()
    ET.fromstring(html)
    assert job["id"][:12] in html
    assert f'href="/jobs/{job["id"]}/report"' in html
    assert "succeeded" in html
