"""Shared fixtures for the job-service tests.

``tiny_spec`` jobs are sized to finish in well under a second so the
queue/scheduler tests stay fast; the crash-recovery tests build their
own larger jobs (they need time to be killed mid-assembly).
"""

from __future__ import annotations

import pytest

from repro.service import AssemblyService, JobSpec


def make_spec(
    genome_length: int = 2_000,
    seed: int = 1,
    k: int = 15,
    **config,
) -> JobSpec:
    merged = {"k": k, "num_workers": 2}
    merged.update(config)
    return JobSpec(
        input={"mode": "simulate", "genome_length": genome_length, "seed": seed},
        config=merged,
    )


@pytest.fixture()
def tiny_spec() -> JobSpec:
    return make_spec()


@pytest.fixture()
def service(tmp_path):
    instance = AssemblyService(
        tmp_path / "service-data",
        num_workers=2,
        port=0,  # pick a free port; tests read service.base_url
        poll_interval=0.05,
    )
    instance.start()
    yield instance
    instance.stop(wait=True)
