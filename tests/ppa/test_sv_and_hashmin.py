"""Tests for the S-V connected-component PPAs and Hash-Min."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ppa import (
    GraphInput,
    components_from_result,
    hash_min_components,
    run_hash_min,
    run_original_sv,
    run_simplified_sv,
    sequential_connected_components,
)


def _random_graph(num_vertices, num_edges, seed):
    rng = random.Random(seed)
    edges = [
        (rng.randrange(num_vertices), rng.randrange(num_vertices)) for _ in range(num_edges)
    ]
    return GraphInput.from_edges(edges).add_isolated(range(num_vertices))


def test_graph_input_from_edges_symmetric():
    graph = GraphInput.from_edges([(1, 2), (2, 3)])
    assert set(graph.adjacency[2]) == {1, 3}
    assert graph.adjacency[1] == [2]


def test_graph_input_add_isolated():
    graph = GraphInput.from_edges([(1, 2)]).add_isolated([5])
    assert graph.adjacency[5] == []


def test_single_vertex_component():
    graph = GraphInput({42: []})
    labels = components_from_result(run_simplified_sv(graph))
    assert labels == {42: 42}


def test_two_components():
    graph = GraphInput.from_edges([(1, 2), (2, 3), (10, 11)])
    labels = components_from_result(run_simplified_sv(graph))
    assert labels[1] == labels[2] == labels[3] == 1
    assert labels[10] == labels[11] == 10


def test_path_graph_labels_are_minimum():
    graph = GraphInput.from_edges([(i, i + 1) for i in range(100)])
    labels = components_from_result(run_simplified_sv(graph))
    assert set(labels.values()) == {0}


def test_cycle_graph():
    n = 64
    graph = GraphInput.from_edges([(i, (i + 1) % n) for i in range(n)])
    labels = components_from_result(run_simplified_sv(graph))
    assert set(labels.values()) == {0}


def test_star_graph():
    graph = GraphInput.from_edges([(0, i) for i in range(1, 50)])
    labels = components_from_result(run_simplified_sv(graph))
    assert set(labels.values()) == {0}


def test_simplified_sv_matches_union_find_on_random_graphs():
    for seed in range(5):
        graph = _random_graph(150, 200, seed)
        labels = components_from_result(run_simplified_sv(graph, num_workers=4))
        assert labels == sequential_connected_components(graph)


def test_original_sv_matches_union_find():
    graph = _random_graph(120, 150, 7)
    labels = components_from_result(run_original_sv(graph, num_workers=4))
    assert labels == sequential_connected_components(graph)


def test_original_sv_needs_more_supersteps_than_simplified():
    """The paper's motivation for the simplification (star hooking is overhead)."""
    graph = _random_graph(200, 260, 3)
    simplified = run_simplified_sv(graph, num_workers=4)
    original = run_original_sv(graph, num_workers=4)
    assert simplified.num_supersteps < original.num_supersteps


def test_simplified_sv_logarithmic_rounds_on_path():
    n = 512
    graph = GraphInput.from_edges([(i, i + 1) for i in range(n - 1)])
    result = run_simplified_sv(graph, num_workers=4)
    # 4 supersteps per round, O(log n) rounds plus slack for the final
    # quiet round.
    assert result.num_supersteps <= 4 * (math.ceil(math.log2(n)) + 4)


def test_hash_min_matches_union_find():
    graph = _random_graph(100, 140, 11)
    labels = hash_min_components(run_hash_min(graph, num_workers=4))
    assert labels == sequential_connected_components(graph)


def test_hash_min_needs_diameter_rounds_on_path():
    """Hash-Min is O(diameter): far more supersteps than S-V on a long path."""
    n = 200
    graph = GraphInput.from_edges([(i, i + 1) for i in range(n - 1)])
    hash_min_result = run_hash_min(graph, num_workers=4)
    sv_result = run_simplified_sv(graph, num_workers=4)
    assert hash_min_result.num_supersteps > sv_result.num_supersteps


@settings(max_examples=20, deadline=None)
@given(
    num_vertices=st.integers(min_value=1, max_value=60),
    density=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_property_sv_equals_union_find(num_vertices, density, seed):
    graph = _random_graph(num_vertices, int(num_vertices * density), seed)
    labels = components_from_result(run_simplified_sv(graph, num_workers=3))
    assert labels == sequential_connected_components(graph)


def test_component_labels_are_member_ids():
    graph = _random_graph(80, 100, 23)
    labels = components_from_result(run_simplified_sv(graph))
    for vertex, label in labels.items():
        assert label in graph.adjacency
        assert label <= vertex
