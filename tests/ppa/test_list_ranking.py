"""Tests for the list-ranking BPPA."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ppa import (
    ListNode,
    ranks_from_result,
    run_list_ranking,
    sequential_list_ranking,
)


def _chain(num_nodes, value=1.0, shuffle_seed=None, id_offset=1):
    ids = list(range(id_offset, id_offset + num_nodes))
    nodes = [
        ListNode(ids[i], value, ids[i - 1] if i > 0 else None) for i in range(num_nodes)
    ]
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(nodes)
    return nodes


def test_paper_example_unit_values():
    """Figure 1: five vertices with value 1 get prefix sums 1..5."""
    nodes = _chain(5)
    ranks = ranks_from_result(run_list_ranking(nodes, num_workers=2))
    assert ranks == {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0, 5: 5.0}


def test_single_node_list():
    ranks = ranks_from_result(run_list_ranking([ListNode(7, 3.5, None)]))
    assert ranks == {7: 3.5}


def test_matches_sequential_reference_on_random_values():
    rng = random.Random(3)
    nodes = [
        ListNode(i, rng.uniform(-5, 5), i - 1 if i > 1 else None) for i in range(1, 101)
    ]
    result = run_list_ranking(nodes, num_workers=4)
    expected = sequential_list_ranking(nodes)
    got = ranks_from_result(result)
    assert got.keys() == expected.keys()
    for key in expected:
        assert got[key] == pytest.approx(expected[key])


def test_storage_order_does_not_matter():
    ordered = _chain(64)
    shuffled = _chain(64, shuffle_seed=9)
    assert ranks_from_result(run_list_ranking(ordered)) == ranks_from_result(
        run_list_ranking(shuffled)
    )


def test_logarithmic_superstep_bound():
    """The BPPA property: O(log n) rounds, two supersteps per round."""
    for length in (8, 64, 512):
        nodes = _chain(length)
        result = run_list_ranking(nodes, num_workers=4)
        bound = 2 * (math.ceil(math.log2(length)) + 2)
        assert result.num_supersteps <= bound


def test_linear_communication_per_round():
    nodes = _chain(200)
    result = run_list_ranking(nodes, num_workers=4)
    for step in result.metrics.supersteps:
        # Each vertex sends at most one request or one response per superstep.
        assert step.messages_sent <= 2 * len(nodes)


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_prefix_sums_match_reference(lengths, seed):
    rng = random.Random(seed)
    nodes = [
        ListNode(i * 7, rng.randint(0, 9), (i - 1) * 7 if i > 1 else None)
        for i in range(1, lengths + 1)
    ]
    rng.shuffle(nodes)
    got = ranks_from_result(run_list_ranking(nodes, num_workers=3))
    assert got == sequential_list_ranking(nodes)


def test_multiple_disjoint_lists():
    first = _chain(10, id_offset=1)
    second = _chain(7, id_offset=100)
    nodes = first + second
    ranks = ranks_from_result(run_list_ranking(nodes, num_workers=4))
    assert ranks[10] == 10.0
    assert ranks[106] == 7.0
