"""Shared fixtures for the test suite."""

from __future__ import annotations

import glob
import time

import pytest

from repro.assembler import AssemblyConfig
from repro.dna.simulator import simulate_dataset


def _shm_segments() -> set:
    """Names of every POSIX shared-memory segment currently present."""
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture(autouse=True)
def no_shm_segment_leaks():
    """Fail any test that leaks a shared-memory segment.

    The multiprocess backend's shm message plane allocates ``psm_*``
    segments under ``/dev/shm``; its contract is that every orderly,
    aborted, or killed-worker exit path unlinks all of them.  This
    fixture snapshots the segments before each test and, with a short
    grace period for worker-process teardown still in flight, asserts
    nothing new survives the test.  On platforms without ``/dev/shm``
    (no tmpfs) the glob is simply empty on both sides.
    """
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    deadline = time.monotonic() + 2.0
    while leaked and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked = _shm_segments() - before
    assert not leaked, f"test leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="session")
def clean_dataset():
    """A small error-free, repeat-free dataset: assembles into one contig."""
    genome, reads = simulate_dataset(
        genome_length=3_000,
        read_length=80,
        coverage=15,
        error_rate=0.0,
        repeat_fraction=0.0,
        seed=101,
    )
    return genome, reads


@pytest.fixture(scope="session")
def noisy_dataset():
    """A dataset with sequencing errors and repeats: exercises error correction."""
    genome, reads = simulate_dataset(
        genome_length=8_000,
        read_length=100,
        coverage=20,
        error_rate=0.005,
        repeat_fraction=0.04,
        seed=202,
    )
    return genome, reads


@pytest.fixture()
def small_config():
    """Assembly configuration suitable for the tiny test datasets."""
    return AssemblyConfig(
        k=15,
        coverage_threshold=0,
        tip_length_threshold=40,
        bubble_edit_distance=5,
        num_workers=4,
    )


@pytest.fixture()
def noisy_config():
    """Assembly configuration for the noisy dataset (filters singletons)."""
    return AssemblyConfig(
        k=21,
        coverage_threshold=1,
        tip_length_threshold=80,
        bubble_edit_distance=5,
        num_workers=4,
    )
