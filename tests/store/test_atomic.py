"""Atomic write discipline shared by checkpoints, blobs, and spills."""

from __future__ import annotations

import os

import pytest

from repro.store.atomic import (
    ORPHAN_TMP_AGE_SECONDS,
    atomic_write_bytes,
    atomic_writer,
    sweep_orphan_tmps,
)


def test_atomic_writer_publishes_on_clean_exit(tmp_path):
    target = tmp_path / "nested" / "file.bin"
    with atomic_writer(target) as handle:
        handle.write(b"payload")
        # Not visible until the context exits.
        assert not target.exists()
    assert target.read_bytes() == b"payload"
    # No temp litter once published.
    assert list(target.parent.iterdir()) == [target]


def test_atomic_writer_cleans_up_on_failure(tmp_path):
    target = tmp_path / "file.bin"
    with pytest.raises(RuntimeError):
        with atomic_writer(target) as handle:
            handle.write(b"half")
            raise RuntimeError("crash mid-write")
    assert not target.exists()
    assert list(tmp_path.iterdir()) == []


def test_atomic_writer_replaces_existing_file(tmp_path):
    target = tmp_path / "file.bin"
    atomic_write_bytes(target, b"old")
    atomic_write_bytes(target, b"new")
    assert target.read_bytes() == b"new"


def test_failed_write_leaves_previous_content(tmp_path):
    target = tmp_path / "file.bin"
    atomic_write_bytes(target, b"durable")
    with pytest.raises(RuntimeError):
        with atomic_writer(target) as handle:
            handle.write(b"doomed")
            raise RuntimeError("boom")
    assert target.read_bytes() == b"durable"


def test_sweep_respects_prefix_and_age(tmp_path):
    old = tmp_path / ".atomic-stale.tmp"
    old.write_bytes(b"")
    ancient = ORPHAN_TMP_AGE_SECONDS * 10
    os.utime(old, (old.stat().st_mtime - ancient, old.stat().st_mtime - ancient))
    fresh = tmp_path / ".atomic-fresh.tmp"
    fresh.write_bytes(b"")
    unrelated = tmp_path / "data.tmp"
    unrelated.write_bytes(b"")

    removed = sweep_orphan_tmps(tmp_path)
    assert removed == 1
    assert not old.exists()
    assert fresh.exists()  # too young: may belong to a live writer
    assert unrelated.exists()  # different prefix: not ours to delete


def test_sweep_of_missing_directory_is_zero(tmp_path):
    assert sweep_orphan_tmps(tmp_path / "nope") == 0
