"""SpillManager round trips, pinning of unpicklables, and stats."""

from __future__ import annotations

import threading

from repro.store.content import ContentStore
from repro.store.spill import SpillManager, SpillStats


def test_spill_load_round_trip(tmp_path):
    manager = SpillManager(directory=tmp_path, stats=SpillStats())
    payload = {"vertices": list(range(100)), "label": "partition-3"}
    assert manager.spill("p3", payload)
    assert manager.has("p3")
    assert manager.spilled_names() == {"p3"}

    loaded = manager.load("p3")
    assert loaded == payload
    assert not manager.has("p3")  # drop=True releases the ticket


def test_load_without_drop_keeps_ticket(tmp_path):
    manager = SpillManager(directory=tmp_path, stats=SpillStats())
    manager.spill("x", [1, 2, 3])
    assert manager.load("x", drop=False) == [1, 2, 3]
    assert manager.has("x")
    assert manager.load("x") == [1, 2, 3]


def test_respill_with_new_content_drops_old_ref(tmp_path):
    stats = SpillStats()
    manager = SpillManager(directory=tmp_path, stats=stats)
    manager.spill("entry", "version-1")
    manager.spill("entry", "version-2")
    assert manager.load("entry") == "version-2"
    manager.close()
    # After close + gc, no blobs survive: the superseded version-1
    # blob lost its only ref at re-spill time.
    assert list(ContentStore(tmp_path).keys()) == []


def test_unpicklable_objects_are_pinned_in_memory(tmp_path):
    manager = SpillManager(directory=tmp_path, stats=SpillStats())
    assert not manager.spill("lock", threading.Lock())
    # The failure is remembered; later attempts skip the pickling.
    assert not manager.spill("lock", threading.Lock())
    assert not manager.has("lock")


def test_stats_count_both_directions(tmp_path):
    stats = SpillStats()
    manager = SpillManager(directory=tmp_path, stats=stats)
    manager.spill("a", list(range(1000)))
    manager.load("a")
    snapshot = stats.snapshot()
    assert snapshot["spill_events"] == 1
    assert snapshot["load_events"] == 1
    assert snapshot["spill_bytes"] == snapshot["load_bytes"] > 0


def test_stats_merge_and_delta():
    stats = SpillStats()
    stats.record_spill(100)
    before = stats.snapshot()
    stats.record_spill(50)
    stats.record_load(50)
    stats.record_ledger_peak(900)
    delta = stats.delta_since(before)
    assert delta["spill_events"] == 1
    assert delta["spill_bytes"] == 50
    assert delta["load_events"] == 1
    assert delta["ledger_peak_bytes"] == 900

    other = SpillStats()
    other.merge(delta)
    assert other.spill_events == 1
    assert other.ledger_peak_bytes == 900
    other.merge({"ledger_peak_bytes": 10})  # peak merges as max
    assert other.ledger_peak_bytes == 900


def test_close_releases_refs_and_tempdir():
    manager = SpillManager(stats=SpillStats())
    manager.spill("tmp", b"x" * 100)
    directory = manager._directory
    assert directory is not None and directory.exists()
    manager.close()
    assert not directory.exists()


def test_identical_payloads_share_one_blob(tmp_path):
    manager = SpillManager(directory=tmp_path, stats=SpillStats())
    manager.spill("inbox-1", {})
    manager.spill("inbox-2", {})
    store = ContentStore(tmp_path)
    assert len(list(store.keys())) == 1
    assert manager.load("inbox-1") == {}
    assert manager.load("inbox-2") == {}
