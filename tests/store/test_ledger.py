"""MemoryLedger accounting and the deterministic size estimator."""

from __future__ import annotations

import pytest

from repro.store.ledger import MemoryLedger, budget_mb_to_bytes, estimate_nbytes


# ----------------------------------------------------------------------
# budget conversion
# ----------------------------------------------------------------------
def test_budget_mb_to_bytes():
    assert budget_mb_to_bytes(None) is None
    assert budget_mb_to_bytes(1) == 1024 * 1024
    assert budget_mb_to_bytes(0.5) == 512 * 1024


# ----------------------------------------------------------------------
# estimate_nbytes
# ----------------------------------------------------------------------
def test_estimator_is_deterministic():
    payload = {"reads": ["ACGT" * 25] * 100, "counts": list(range(50))}
    assert estimate_nbytes(payload) == estimate_nbytes(payload)


def test_estimator_scales_with_content():
    assert estimate_nbytes("x" * 1000) > estimate_nbytes("x" * 10)
    assert estimate_nbytes(b"x" * 1000) > estimate_nbytes(b"x" * 10)
    assert estimate_nbytes([1] * 1000) > estimate_nbytes([1] * 10)
    assert estimate_nbytes({i: i for i in range(100)}) > estimate_nbytes({1: 1})


def test_estimator_uses_numpy_nbytes_exactly():
    np = pytest.importorskip("numpy")
    array = np.zeros(1000, dtype=np.int64)
    estimate = estimate_nbytes(array)
    assert estimate >= array.nbytes
    assert estimate - array.nbytes < 1024  # header overhead only


def test_estimator_handles_scalars_and_objects():
    assert estimate_nbytes(None) > 0
    assert estimate_nbytes(True) > 0
    assert estimate_nbytes(3.14) > 0

    class WithDict:
        def __init__(self):
            self.data = "y" * 500

    class WithSlots:
        __slots__ = ("data",)

        def __init__(self):
            self.data = "y" * 500

    assert estimate_nbytes(WithDict()) > 500
    assert estimate_nbytes(WithSlots()) > 500


def test_estimator_extrapolates_from_sample():
    # Homogeneous container: the sampled per-item cost must scale to
    # the full length, not stop at the sample.
    small = estimate_nbytes(["read" * 10] * 16)
    large = estimate_nbytes(["read" * 10] * 1600)
    assert large > small * 50


# ----------------------------------------------------------------------
# MemoryLedger
# ----------------------------------------------------------------------
def test_track_release_and_peak():
    ledger = MemoryLedger(budget_bytes=1000, name="t1")
    ledger.track("a", 400)
    ledger.track("b", 500)
    assert ledger.live_bytes == 900
    assert not ledger.over_budget
    assert ledger.headroom() == 100

    ledger.track("c", 300)
    assert ledger.over_budget
    assert ledger.peak_bytes == 1200

    assert ledger.release("a") == 400
    assert ledger.live_bytes == 800
    assert not ledger.over_budget
    assert ledger.peak_bytes == 1200  # peak is sticky
    assert ledger.release("a") == 0  # double release is harmless


def test_retracking_replaces_previous_size():
    ledger = MemoryLedger(budget_bytes=None, name="t2")
    ledger.track("x", 100)
    ledger.track("x", 250)
    assert ledger.live_bytes == 250
    assert ledger.nbytes("x") == 250
    assert ledger.tracked("x")


def test_unlimited_ledger_never_over_budget():
    ledger = MemoryLedger(budget_bytes=None, name="t3")
    ledger.track("huge", 10**12)
    assert not ledger.over_budget
    assert ledger.headroom() is None


def test_victims_walk_in_lru_order():
    ledger = MemoryLedger(budget_bytes=10, name="t4")
    ledger.track("a", 100)
    ledger.track("b", 100)
    ledger.track("c", 100)
    ledger.touch("a")  # now b is the least recently used
    assert [name for name, _ in ledger.victims()] == ["b", "c", "a"]
    assert [name for name, _ in ledger.victims({"c"})] == ["b", "a"]


def test_victims_tolerate_release_during_iteration():
    ledger = MemoryLedger(budget_bytes=10, name="t5")
    for name in ("a", "b", "c"):
        ledger.track(name, 100)
    seen = []
    for name, _ in ledger.victims():
        seen.append(name)
        ledger.release(name)
    assert seen == ["a", "b", "c"]
    assert ledger.live_bytes == 0


def test_touch_of_unknown_entry_is_noop():
    ledger = MemoryLedger(budget_bytes=10, name="t6")
    ledger.touch("ghost")
    assert ledger.live_bytes == 0
