"""Out-of-core acceptance: a memory budget never changes the answer.

The budget knob moves work to disk — streamed ingest runs, idle serial
partitions, delivered inboxes, multiprocess staged batches — but every
observable output (contigs, scaffolds, per-stage summaries, bit-exact
metrics) must match the unlimited run, on every backend and message
plane.  A tiny budget on a non-trivial dataset forces heavy spilling,
so these tests exercise the whole plane, not just the accounting.
"""

from __future__ import annotations

import pytest

from repro import AssemblyConfig, PPAAssembler
from repro.dna import simulate_paired_dataset
from repro.store.spill import process_spill_stats
from repro.workflow import WorkflowHooks

#: Small enough to force spilling on the test datasets, large enough
#: that the spill plane still makes progress.
TINY_BUDGET_MB = 0.05


@pytest.fixture(scope="module")
def paired_library():
    _genome, pairs = simulate_paired_dataset(
        6_000, insert_size_mean=350, insert_size_std=35, seed=9
    )
    return pairs


def _config(backend="serial", message_plane="shm", budget=None):
    return AssemblyConfig(
        k=17,
        scaffold=True,
        num_workers=2,
        backend=backend,
        message_plane=message_plane,
        memory_budget_mb=budget,
    )


def _assert_identical(budgeted, baseline):
    assert budgeted.contigs == baseline.contigs
    assert budgeted.scaffolds == baseline.scaffolds
    assert budgeted.scaffolding == baseline.scaffolding
    assert [(s.name, s.detail) for s in budgeted.stages] == [
        (s.name, s.detail) for s in baseline.stages
    ]
    assert budgeted.metrics == baseline.metrics
    assert budgeted.labeling_metrics == baseline.labeling_metrics


def test_serial_budgeted_run_is_bit_identical_and_spills(paired_library):
    baseline = PPAAssembler(_config()).assemble_paired(paired_library)
    before = process_spill_stats().snapshot()
    budgeted = PPAAssembler(_config(budget=TINY_BUDGET_MB)).assemble_paired(
        paired_library
    )
    delta = process_spill_stats().delta_since(before)
    _assert_identical(budgeted, baseline)
    assert delta["spill_events"] > 0
    assert delta["spill_bytes"] > 0
    assert delta["load_events"] > 0


@pytest.mark.parametrize("message_plane", ["shm", "queue"])
def test_multiprocess_budgeted_run_is_bit_identical(paired_library, message_plane):
    baseline = PPAAssembler(
        _config(backend="multiprocess", message_plane=message_plane)
    ).assemble_paired(paired_library)
    before = process_spill_stats().snapshot()
    budgeted = PPAAssembler(
        _config(
            backend="multiprocess",
            message_plane=message_plane,
            budget=TINY_BUDGET_MB,
        )
    ).assemble_paired(paired_library)
    delta = process_spill_stats().delta_since(before)
    _assert_identical(budgeted, baseline)
    # Worker-side spill deltas ride the superstep counters back to the
    # master; the process-wide totals must have grown.
    assert delta["spill_events"] > 0


def test_budget_equals_unlimited_across_budgets(paired_library):
    """Different budgets all land on the same answer (no threshold magic)."""
    results = [
        PPAAssembler(_config(budget=budget)).assemble_paired(paired_library)
        for budget in (None, 0.05, 1.0)
    ]
    for other in results[1:]:
        _assert_identical(other, results[0])


class SimulatedCrash(RuntimeError):
    pass


def _crash_after(stage_index):
    def bomb(stage, index, total, seconds):
        if index == stage_index:
            raise SimulatedCrash(stage.name)

    return WorkflowHooks(on_stage_end=bomb)


def test_crash_mid_spill_then_resume_is_bit_identical(paired_library, tmp_path):
    """A budgeted run killed mid-workflow resumes to the exact answer.

    The crash lands after a stage that spilled heavily, so the resumed
    run proves two things at once: stage checkpoints are not corrupted
    by spill traffic, and a fresh spill plane rebuilt on resume reaches
    the same results.
    """
    config = _config(budget=TINY_BUDGET_MB)
    baseline = PPAAssembler(_config()).assemble_paired(paired_library)

    checkpoint_dir = tmp_path / "ckpt"
    with pytest.raises(SimulatedCrash):
        PPAAssembler(config).assemble_paired(
            paired_library,
            checkpoint_dir=checkpoint_dir,
            hooks=_crash_after(3),
        )
    assert list(checkpoint_dir.glob("checkpoint-*.pkl"))

    before = process_spill_stats().snapshot()
    resumed = PPAAssembler(config).assemble_paired(
        paired_library, checkpoint_dir=checkpoint_dir, resume=True
    )
    delta = process_spill_stats().delta_since(before)
    _assert_identical(resumed, baseline)
    assert delta["spill_events"] > 0  # the resumed half still spilled
