"""ContentStore semantics: addressing, refs, names, and GC roots."""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.store.atomic import ORPHAN_TMP_AGE_SECONDS
from repro.store.content import ContentStore, content_key


@pytest.fixture()
def store(tmp_path):
    return ContentStore(tmp_path / "cas")


def test_put_is_content_addressed_and_idempotent(store):
    key = store.put(b"hello")
    assert key == hashlib.sha256(b"hello").hexdigest()
    assert key == content_key(b"hello")
    assert store.put(b"hello") == key  # identical payload, one blob
    assert store.get(key) == b"hello"
    assert store.has(key)
    assert store.size(key) == 5
    assert list(store.keys()) == [key]


def test_identical_payloads_share_one_blob(store):
    assert store.put(b"x" * 100) == store.put(b"x" * 100)
    assert len(list(store.keys())) == 1


def test_invalid_key_is_rejected(store):
    with pytest.raises(ValueError):
        store.path("not-a-key")
    with pytest.raises(ValueError):
        store.path("../../etc/passwd")


def test_refs_pin_blobs_across_gc(store):
    key = store.put(b"pinned")
    store.add_ref(key, "owner-a")
    store.add_ref(key, "owner-a")  # idempotent per owner
    store.add_ref(key, "owner-b")
    assert store.ref_count(key) == 2

    assert store.gc().blobs_removed == 0
    store.drop_ref(key, "owner-a")
    assert store.ref_count(key) == 1
    assert store.gc().blobs_removed == 0

    store.drop_ref(key, "owner-b")
    result = store.gc()
    assert result.blobs_removed == 1
    assert result.removed_keys == [key]
    assert result.bytes_reclaimed == len(b"pinned")
    assert not store.has(key)


def test_dropping_a_missing_ref_is_harmless(store):
    key = store.put(b"data")
    store.drop_ref(key, "never-added")
    assert store.has(key)


def test_names_are_mutable_aliases_and_gc_roots(store):
    first = store.put_named("dataset", b"v1")
    assert store.get_named("dataset") == b"v1"
    assert store.resolve_name("dataset") == first

    second = store.put_named("dataset", b"v2")
    assert store.get_named("dataset") == b"v2"
    assert second != first

    # v2 is rooted by the name; v1 is now unreferenced garbage.
    result = store.gc()
    assert result.removed_keys == [first]
    assert store.get_named("dataset") == b"v2"

    store.delete_name("dataset")
    assert store.get_named("dataset") is None
    assert store.gc().removed_keys == [second]


def test_names_listing(store):
    store.put_named("b-name", b"2")
    store.put_named("a-name", b"1")
    assert list(store.names()) == ["a-name", "b-name"]


def test_gc_sweeps_stale_tmp_files(store, tmp_path):
    key = store.put(b"anchor")
    store.add_ref(key, "keep")
    shard = store.path(key).parent
    orphan = shard / ".blob-orphan.tmp"
    orphan.write_bytes(b"half a blob")
    ancient = orphan.stat().st_mtime - ORPHAN_TMP_AGE_SECONDS * 10
    os.utime(orphan, (ancient, ancient))

    result = store.gc()
    assert result.tmp_removed == 1
    assert not orphan.exists()
    assert store.has(key)


def test_empty_store_gc_and_iteration(store):
    assert list(store.keys()) == []
    assert list(store.names()) == []
    result = store.gc()
    assert result.blobs_removed == 0 and result.tmp_removed == 0
