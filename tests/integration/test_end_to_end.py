"""Integration tests: the full workflow on simulated datasets.

These tests exercise the same code paths the benchmarks use, at a scale
small enough for the regular test run: dataset profiles, the complete
①②③④⑤⑥②③ workflow, the LR-vs-S-V equivalence, the quality assessment,
and the comparison against the baselines.
"""

from __future__ import annotations

import pytest

from repro import AssemblyConfig, PPAAssembler
from repro.assembler.config import LABELING_SIMPLIFIED_SV
from repro.baselines import AbyssLikeAssembler
from repro.bench import (
    BENCH_MIN_CONTIG,
    bench_cluster_profile,
    ppa_config,
    prepare_dataset,
)
from repro.dna.datasets import get_profile
from repro.dna.sequence import reverse_complement
from repro.quality import evaluate_assembly


@pytest.fixture(scope="module")
def hc2_tiny():
    """A very small instance of the HC-2 profile (reference available)."""
    profile = get_profile("hc2", scale=0.25)
    reference, reads = profile.generate_with_reference()
    return profile, reference, reads


@pytest.fixture(scope="module")
def assembled(hc2_tiny):
    _profile, _reference, reads = hc2_tiny
    config = AssemblyConfig(k=21, coverage_threshold=1, tip_length_threshold=80, num_workers=4)
    return PPAAssembler(config).assemble(reads)


def test_full_workflow_produces_quality_contigs(hc2_tiny, assembled):
    _profile, reference, _reads = hc2_tiny
    report = evaluate_assembly(
        assembled.contigs,
        reference=reference,
        assembler="PPA",
        min_contig_length=BENCH_MIN_CONTIG,
    )
    assert report.num_contigs > 0
    assert report.genome_fraction > 60.0
    assert report.misassemblies <= max(1, report.num_contigs // 10)
    assert report.mismatches_per_100kbp < 200


def test_second_labeling_round_reduces_vertex_count(assembled):
    """Section V: the vertex count collapses once k-mers merge into contigs."""
    first = assembled.stage("contig-labeling/kmers").detail["labelled_vertices"]
    second = assembled.stage("contig-labeling/contigs-round-1").detail["labelled_vertices"]
    assert second < first / 10


def test_lr_and_sv_workflows_produce_identical_contigs(hc2_tiny):
    _profile, _reference, reads = hc2_tiny
    base = AssemblyConfig(k=21, coverage_threshold=1, tip_length_threshold=80, num_workers=4)
    lr_result = PPAAssembler(base).assemble(reads)
    sv_result = PPAAssembler(base.with_labeling(LABELING_SIMPLIFIED_SV)).assemble(reads)
    assert sorted(lr_result.contigs) == sorted(sv_result.contigs)
    # ... but list ranking gets there with fewer supersteps and messages.
    assert (
        lr_result.labeling_summary("kmers")["supersteps"]
        < sv_result.labeling_summary("kmers")["supersteps"]
    )
    assert (
        lr_result.labeling_summary("kmers")["messages"]
        < sv_result.labeling_summary("kmers")["messages"]
    )


def test_error_correction_improves_contiguity(hc2_tiny):
    """Bubble filtering + tip removal + re-merging must not fragment the assembly."""
    _profile, _reference, reads = hc2_tiny
    with_correction = AssemblyConfig(
        k=21, coverage_threshold=1, tip_length_threshold=80, num_workers=4,
        error_correction_rounds=1,
    )
    without_correction = AssemblyConfig(
        k=21, coverage_threshold=1, tip_length_threshold=80, num_workers=4,
        error_correction_rounds=0,
    )
    corrected = PPAAssembler(with_correction).assemble(reads)
    raw = PPAAssembler(without_correction).assemble(reads)
    assert corrected.num_contigs(BENCH_MIN_CONTIG) <= raw.num_contigs(BENCH_MIN_CONTIG)
    assert corrected.largest_contig() >= raw.largest_contig()


def test_ppa_beats_abyss_like_baseline_on_n50(hc2_tiny, assembled):
    """The Table IV headline: PPA-assembler's N50 exceeds ABySS's."""
    _profile, reference, reads = hc2_tiny
    abyss = AbyssLikeAssembler(k=21, num_workers=4).assemble(reads)
    ppa_report = evaluate_assembly(
        assembled.contigs, reference=reference, min_contig_length=BENCH_MIN_CONTIG
    )
    abyss_report = evaluate_assembly(
        abyss.contigs, reference=reference, min_contig_length=BENCH_MIN_CONTIG
    )
    assert ppa_report.n50 >= abyss_report.n50


def test_estimated_time_decreases_with_more_workers(hc2_tiny):
    """Figure 12 shape: PPA-assembler's simulated time falls as workers are added."""
    _profile, _reference, reads = hc2_tiny
    profile = bench_cluster_profile()
    times = {}
    for workers in (4, 16):
        config = AssemblyConfig(
            k=21, coverage_threshold=1, tip_length_threshold=80, num_workers=workers
        )
        result = PPAAssembler(config).assemble(reads)
        times[workers] = result.estimated_seconds(profile)
    assert times[16] < times[4]


def test_bench_harness_prepares_profiles():
    dataset = prepare_dataset("hc2", scale=0.1)
    assert dataset.name == "hc2"
    assert dataset.reference is not None
    assert len(dataset.reads) > 0
    hc14 = prepare_dataset("hc14", scale=0.05)
    assert hc14.reference is None
    config = ppa_config(num_workers=8)
    assert config.num_workers == 8


def test_contigs_have_no_invalid_characters(assembled):
    for contig in assembled.contigs:
        assert set(contig) <= set("ACGT")


def test_every_long_contig_aligns_to_reference(hc2_tiny, assembled):
    _profile, reference, _reads = hc2_tiny
    both_strands = reference + "#" + reverse_complement(reference)
    exact = sum(
        1
        for contig in assembled.contigs_longer_than(BENCH_MIN_CONTIG)
        if contig in both_strands or reverse_complement(contig) in both_strands
    )
    total = len(assembled.contigs_longer_than(BENCH_MIN_CONTIG))
    # Substitution errors may survive in a few low-coverage contigs, but
    # the overwhelming majority must be exact substrings of the genome.
    assert exact >= 0.7 * total
