"""Tests for the request-respond idiom."""

from __future__ import annotations

from repro.pregel import (
    PregelEngine,
    PregelJob,
    Request,
    RequestRespondMixin,
    Response,
    Vertex,
    split_responses,
)


class StateVertex(RequestRespondMixin, Vertex):
    """Answers requests with its own value; requesters record the answer."""

    def request_payload(self, tag):
        return self.value

    def compute(self, messages, ctx):
        remaining = self.respond_to_requests(messages, ctx)
        responses, _ = split_responses(remaining)
        for response in responses:
            self.value = ("got", response.responder, response.payload)
        if ctx.superstep == 0 and self.vertex_id == 1:
            self.send_request(ctx, 2)
            return
        self.vote_to_halt()


def test_request_gets_answered_in_two_supersteps():
    vertices = [StateVertex(1, value="asker"), StateVertex(2, value="target-state")]
    result = PregelEngine(num_workers=2).run(PregelJob(name="rr", vertices=vertices))
    assert result.vertices[1].value == ("got", 2, "target-state")
    assert result.num_supersteps == 3


def test_duplicate_requests_answered_once():
    class DoubleAsker(StateVertex):
        def compute(self, messages, ctx):
            remaining = self.respond_to_requests(messages, ctx)
            responses, _ = split_responses(remaining)
            if responses:
                self.value = len(responses)
            if ctx.superstep == 0 and self.vertex_id == 1:
                self.send_request(ctx, 2)
                self.send_request(ctx, 2)
                return
            self.vote_to_halt()

    vertices = [DoubleAsker(1, value=0), DoubleAsker(2, value="state")]
    result = PregelEngine(num_workers=1).run(PregelJob(name="dup", vertices=vertices))
    assert result.vertices[1].value == 1


def test_split_responses_separates_message_kinds():
    messages = [Response(responder=1, payload="x"), "other", Request(requester=2)]
    responses, others = split_responses(messages)
    assert len(responses) == 1 and responses[0].payload == "x"
    assert others == ["other", Request(requester=2)]


def test_message_sizes_reported():
    assert Request(requester=1).message_size() > 0
    assert Response(responder=1, payload="abcdef").message_size() > Request(requester=1).message_size()
