"""Tests for message routing, combiners and hash partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.pregel.message import Combiner, MessageRouter, min_combiner, sum_combiner
from repro.pregel.partitioner import HashPartitioner


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
def test_partitioner_rejects_non_positive_workers():
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_partitioner_is_deterministic():
    partitioner = HashPartitioner(8)
    assert all(partitioner.worker_for(i) == partitioner.worker_for(i) for i in range(1000))


@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=1, max_value=64))
def test_partitioner_in_range(key, workers):
    partitioner = HashPartitioner(workers)
    assert 0 <= partitioner.worker_for(key) < workers


def test_partitioner_balances_sequential_ids():
    partitioner = HashPartitioner(8)
    counts = [0] * 8
    for key in range(10_000):
        counts[partitioner.worker_for(key)] += 1
    assert max(counts) < 2 * min(counts)


def test_partitioner_handles_non_integer_keys():
    partitioner = HashPartitioner(4)
    assert 0 <= partitioner.worker_for(("a", 1)) < 4
    assert 0 <= partitioner.worker_for("string-key") < 4


# ----------------------------------------------------------------------
# combiners
# ----------------------------------------------------------------------
def test_min_combiner():
    combiner = min_combiner()
    assert combiner.combine(3, 5) == 3


def test_sum_combiner():
    combiner = sum_combiner()
    assert combiner.combine(3, 5) == 8


def test_custom_combiner():
    combiner = Combiner(lambda a, b: a + "," + b)
    assert combiner.combine("x", "y") == "x,y"


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
def test_router_counts_raw_messages():
    router = MessageRouter(HashPartitioner(4))
    router.post([(1, "a"), (2, "b"), (1, "c")])
    assert router.raw_message_count == 3
    assert router.raw_byte_count > 0
    assert router.has_pending()


def test_router_delivery_groups_by_vertex():
    router = MessageRouter(HashPartitioner(1))
    router.post([(1, "a"), (2, "b"), (1, "c")])
    inboxes = router.deliver()
    assert sorted(inboxes[0][1]) == ["a", "c"]
    assert inboxes[0][2] == ["b"]
    assert not router.has_pending()


def test_router_with_combiner_collapses_per_vertex():
    router = MessageRouter(HashPartitioner(1), combiner=min_combiner())
    router.post([(7, 5), (7, 3), (7, 9)])
    inboxes = router.deliver()
    assert inboxes[0][7] == [3]


def test_router_per_worker_accounting():
    partitioner = HashPartitioner(4)
    router = MessageRouter(partitioner)
    router.post([(i, "payload") for i in range(100)])
    total = sum(router.messages_to_worker(worker) for worker in range(4))
    assert total == 100
    total_bytes = sum(router.bytes_to_worker(worker) for worker in range(4))
    assert total_bytes == 100 * len("payload")


def test_router_reset_counters():
    router = MessageRouter(HashPartitioner(2))
    router.post([(1, "a")])
    router.reset_counters()
    assert router.raw_message_count == 0
    assert router.raw_byte_count == 0


def test_router_combines_incrementally_at_post_time():
    """With a combiner the buffer stays bounded by distinct targets."""
    router = MessageRouter(HashPartitioner(4), combiner=min_combiner())
    for value in range(1000):
        router.post([(7, value), (8, value + 1)])
    # 2000 raw messages posted, but only one combined value per target
    # is buffered — this is what keeps superstep memory bounded.
    assert router.raw_message_count == 2000
    assert router.buffered_message_count() == 2
    inboxes = router.deliver()
    delivered = {
        target: messages
        for per_vertex in inboxes.values()
        for target, messages in per_vertex.items()
    }
    assert delivered == {7: [0], 8: [1]}


def test_router_raw_per_worker_counters_survive_combining():
    partitioner = HashPartitioner(4)
    router = MessageRouter(partitioner, combiner=min_combiner())
    router.post([(7, 5), (7, 3), (7, 9)])
    worker = partitioner.worker_for(7)
    assert router.messages_to_worker(worker) == 3
    assert router.bytes_to_worker(worker) == 24  # three 8-byte ints
    router.deliver()
    assert router.messages_to_worker(worker) == 0
    assert router.bytes_to_worker(worker) == 0


def test_router_post_time_combining_matches_deliver_time_fold():
    """Same fold order as the old deliver-time combining: post order."""
    seen = []

    def record_first(left, right):
        seen.append((left, right))
        return min(left, right)

    router = MessageRouter(HashPartitioner(1), combiner=Combiner(record_first))
    router.post([(1, 5)])
    router.post([(1, 3), (1, 9)])
    assert router.deliver() == {0: {1: [3]}}
    assert seen == [(5, 3), (3, 9)]


def test_router_buffered_count_without_combiner_is_raw():
    router = MessageRouter(HashPartitioner(2))
    router.post([(1, "a"), (1, "b"), (2, "c")])
    assert router.buffered_message_count() == 3
