"""Tests for the Pregel BSP engine."""

from __future__ import annotations

import pytest

from repro.errors import InvalidJobError, SuperstepLimitExceededError, VertexNotFoundError
from repro.pregel import (
    ComputeContext,
    PregelEngine,
    PregelJob,
    Vertex,
    VertexFactory,
    min_combiner,
    or_aggregator,
    sum_aggregator,
)


class EchoVertex(Vertex):
    """Sends its value to each neighbour once, then halts."""

    def compute(self, messages, ctx):
        if ctx.superstep == 0:
            for neighbor in self.edges:
                ctx.send(neighbor, self.value)
        else:
            self.value = sorted(messages)
        self.vote_to_halt()


class CountdownVertex(Vertex):
    """Stays active for ``value`` supersteps."""

    def compute(self, messages, ctx):
        self.value -= 1
        if self.value <= 0:
            self.vote_to_halt()


class ForeverVertex(Vertex):
    def compute(self, messages, ctx):
        ctx.send(self.vertex_id, 1)  # keeps itself busy forever


class MinFloodVertex(Vertex):
    def compute(self, messages, ctx):
        best = min(messages) if messages else self.value
        if ctx.superstep == 0 or best < self.value:
            self.value = min(self.value, best)
            for neighbor in self.edges:
                ctx.send(neighbor, self.value)
        self.vote_to_halt()


def test_empty_job_rejected():
    engine = PregelEngine(num_workers=2)
    with pytest.raises(InvalidJobError):
        engine.run(PregelJob(name="empty", vertices=[]))


def test_invalid_worker_count_rejected():
    with pytest.raises(InvalidJobError):
        PregelEngine(num_workers=0)


def test_message_exchange_between_vertices():
    vertices = [
        EchoVertex(1, value="a", edges=[2]),
        EchoVertex(2, value="b", edges=[1]),
    ]
    result = PregelEngine(num_workers=2).run(PregelJob(name="echo", vertices=vertices))
    assert result.vertices[1].value == ["b"]
    assert result.vertices[2].value == ["a"]


def test_terminates_when_all_halted_and_no_messages():
    vertices = [CountdownVertex(i, value=3) for i in range(10)]
    result = PregelEngine(num_workers=3).run(PregelJob(name="countdown", vertices=vertices))
    assert result.num_supersteps == 3
    assert all(vertex.value == 0 for vertex in result.vertices.values())


def test_superstep_limit_enforced():
    job = PregelJob(name="forever", vertices=[ForeverVertex(1)], max_supersteps=5)
    with pytest.raises(SuperstepLimitExceededError):
        PregelEngine(num_workers=1).run(job)


def test_message_to_unknown_vertex_raises_without_factory():
    class BadSender(Vertex):
        def compute(self, messages, ctx):
            ctx.send(999, "hello")
            self.vote_to_halt()

    with pytest.raises(VertexNotFoundError):
        PregelEngine(num_workers=2).run(PregelJob(name="bad", vertices=[BadSender(1)]))


def test_vertex_factory_creates_missing_targets():
    class Sender(Vertex):
        def compute(self, messages, ctx):
            if ctx.superstep == 0 and self.vertex_id == 1:
                ctx.send(42, "ping")
            self.vote_to_halt()

    factory = VertexFactory(Sender, default_value="created")
    result = PregelEngine(num_workers=2).run(
        PregelJob(name="factory", vertices=[Sender(1)], vertex_factory=factory)
    )
    assert 42 in result.vertices
    assert result.vertices[42].value == "created"


def test_halted_vertex_reactivated_by_message():
    class LateSender(Vertex):
        def compute(self, messages, ctx):
            if ctx.superstep == 2 and self.vertex_id == 1:
                ctx.send(2, "wake up")
            if messages:
                self.value = messages[0]
                self.vote_to_halt()
            if ctx.superstep >= 3:
                self.vote_to_halt()

    vertices = [LateSender(1, value=None), LateSender(2, value=None)]
    result = PregelEngine(num_workers=2).run(PregelJob(name="wake", vertices=vertices))
    assert result.vertices[2].value == "wake up"


def test_aggregator_values_visible_next_superstep():
    observed = {}

    class AggVertex(Vertex):
        def compute(self, messages, ctx):
            if ctx.superstep == 0:
                ctx.aggregate("total", self.value)
            elif ctx.superstep == 1:
                observed[self.vertex_id] = ctx.aggregated_value("total")
                self.vote_to_halt()

    vertices = [AggVertex(i, value=i) for i in range(1, 5)]
    PregelEngine(num_workers=2).run(
        PregelJob(name="agg", vertices=vertices, aggregators=[sum_aggregator("total")])
    )
    assert set(observed.values()) == {10}


def test_halt_condition_stops_job_early():
    vertices = [CountdownVertex(i, value=100) for i in range(5)]
    calls = []

    def stop_after_two(snapshot):
        calls.append(snapshot)
        return len(calls) >= 2

    result = PregelEngine(num_workers=2).run(
        PregelJob(name="early", vertices=vertices, halt_condition=stop_after_two)
    )
    assert result.num_supersteps == 2


def test_combiner_reduces_message_count_but_not_result():
    edges = [(i, 0) for i in range(1, 20)]

    def build():
        vertices = [MinFloodVertex(0, value=0, edges=[])]
        vertices += [MinFloodVertex(i, value=i, edges=[0]) for i in range(1, 20)]
        return vertices

    plain = PregelEngine(num_workers=4).run(PregelJob(name="plain", vertices=build()))
    combined = PregelEngine(num_workers=4).run(
        PregelJob(name="combined", vertices=build(), combiner=min_combiner())
    )
    assert plain.vertices[0].value == combined.vertices[0].value == 0


def test_metrics_capture_messages_and_supersteps():
    vertices = [
        EchoVertex(1, value="x", edges=[2]),
        EchoVertex(2, value="y", edges=[1]),
    ]
    result = PregelEngine(num_workers=2).run(PregelJob(name="metrics", vertices=vertices))
    assert result.metrics.num_supersteps == result.num_supersteps
    assert result.metrics.total_messages == 2
    assert result.metrics.total_bytes > 0
    per_worker = result.metrics.supersteps[0].worker_messages_sent
    assert sum(per_worker) == 2


def test_vertices_distributed_across_workers():
    engine = PregelEngine(num_workers=4)
    vertices = [CountdownVertex(i, value=1) for i in range(1000)]
    workers = engine.backend.partition_into_workers(vertices)
    sizes = [len(worker) for worker in workers]
    assert sum(sizes) == 1000
    assert min(sizes) > 100  # roughly balanced


def test_deterministic_results_across_worker_counts():
    def run(num_workers):
        vertices = [MinFloodVertex(i, value=i, edges=[(i + 1) % 50, (i - 1) % 50]) for i in range(50)]
        result = PregelEngine(num_workers=num_workers).run(
            PregelJob(name="ring", vertices=vertices)
        )
        return result.vertex_values()

    assert run(1) == run(3) == run(8)
