"""Tests for the mini-MapReduce extension, job chaining and metrics."""

from __future__ import annotations

import pytest

from repro.pregel import (
    ClusterProfile,
    CostModel,
    JobMetrics,
    MiniMapReduce,
    PipelineMetrics,
    PregelJob,
    SuperstepMetrics,
    Vertex,
    estimate_seconds,
)
from repro.workflow import StageExecutor


# ----------------------------------------------------------------------
# mini-MapReduce
# ----------------------------------------------------------------------
def test_word_count_mapreduce():
    records = ["a b a", "b c", "a"]
    result = MiniMapReduce(num_workers=3).run(
        records,
        map_fn=lambda line: [(word, 1) for word in line.split()],
        reduce_fn=lambda word, counts: [(word, sum(counts))],
    )
    assert dict(result.outputs) == {"a": 3, "b": 2, "c": 1}
    assert result.groups == 3


def test_mapreduce_filtering_reduce():
    records = list(range(100))
    result = MiniMapReduce(num_workers=4).run(
        records,
        map_fn=lambda value: [(value % 10, value)],
        reduce_fn=lambda key, values: [key] if sum(values) > 400 else [],
    )
    assert all(isinstance(output, int) for output in result.outputs)
    assert result.groups == 10


def test_mapreduce_map_can_emit_nothing():
    result = MiniMapReduce(num_workers=2).run(
        ["skip", "keep"],
        map_fn=lambda record: [] if record == "skip" else [(record, 1)],
        reduce_fn=lambda key, values: [key],
    )
    assert result.outputs == ["keep"]


def test_mapreduce_metrics_have_two_phases():
    result = MiniMapReduce(num_workers=2, name="mr").run(
        ["x"] * 10,
        map_fn=lambda record: [(record, 1)],
        reduce_fn=lambda key, values: [len(values)],
    )
    assert result.metrics.job_name == "mr"
    assert result.metrics.num_supersteps == 2
    assert result.metrics.loading_ops > 0


def test_mapreduce_mixed_key_types_sort():
    result = MiniMapReduce(num_workers=1).run(
        [1, 2],
        map_fn=lambda value: [((value, value), value), (value, value)],
        reduce_fn=lambda key, values: [key],
    )
    assert len(result.outputs) == 4


# ----------------------------------------------------------------------
# job chain
# ----------------------------------------------------------------------
class NoopVertex(Vertex):
    def compute(self, messages, ctx):
        self.vote_to_halt()


def test_job_chain_accumulates_metrics():
    chain = StageExecutor(num_workers=2)
    chain.run_mapreduce(
        "stage-1",
        records=[1, 2, 3],
        map_fn=lambda value: [(value, value)],
        reduce_fn=lambda key, values: values,
    )
    chain.run_pregel(PregelJob(name="stage-2", vertices=[NoopVertex(1), NoopVertex(2)]))
    assert [job.job_name for job in chain.metrics().jobs] == ["stage-1", "stage-2"]
    assert chain.metrics().total_supersteps >= 3


def test_job_chain_convert_shuffles_outputs():
    chain = StageExecutor(num_workers=4)
    vertices = [NoopVertex(i) for i in range(20)]
    conversion = chain.convert(
        "convert",
        vertices,
        convert_fn=lambda vertex: [NoopVertex(vertex.vertex_id + 1000)],
    )
    assert len(conversion.outputs) == 20
    assert conversion.metrics.job_name == "convert"
    assert chain.metrics().jobs[-1] is conversion.metrics


def test_job_chain_reset_metrics():
    chain = StageExecutor(num_workers=2)
    chain.run_pregel(PregelJob(name="only", vertices=[NoopVertex(1)]))
    chain.reset_metrics()
    assert chain.metrics().jobs == []


# ----------------------------------------------------------------------
# metrics / cost model
# ----------------------------------------------------------------------
def _job_with_load(compute_per_worker, bytes_per_worker, name="job", workers=4):
    job = JobMetrics(job_name=name, num_workers=workers)
    step = SuperstepMetrics(superstep=0)
    step.worker_compute_ops = list(compute_per_worker)
    step.worker_bytes_sent = list(bytes_per_worker)
    step.worker_bytes_received = list(bytes_per_worker)
    step.compute_ops = sum(compute_per_worker)
    step.bytes_sent = sum(bytes_per_worker)
    job.add(step)
    return job


def test_job_metrics_totals():
    job = _job_with_load([10, 20], [100, 200], workers=2)
    assert job.total_compute_ops == 30
    assert job.total_bytes == 300
    assert job.summary()["supersteps"] == 1


def test_pipeline_metrics_lookup():
    pipeline = PipelineMetrics()
    pipeline.add(_job_with_load([1], [1], name="a", workers=1))
    pipeline.add(_job_with_load([1], [1], name="b", workers=1))
    pipeline.add(_job_with_load([1], [1], name="a", workers=1))
    assert pipeline.job("a").job_name == "a"
    assert pipeline.job("missing") is None
    assert len(pipeline.jobs_named("a")) == 2


def test_cost_model_charges_slowest_worker():
    balanced = _job_with_load([100, 100], [0, 0], workers=2)
    skewed = _job_with_load([190, 10], [0, 0], workers=2)
    model = CostModel()
    assert model.job_seconds(skewed) > model.job_seconds(balanced)


def test_cost_model_more_workers_cheaper_loading():
    profile = ClusterProfile()
    few = JobMetrics(job_name="few", num_workers=2, loading_ops=1_000_000)
    many = JobMetrics(job_name="many", num_workers=16, loading_ops=1_000_000)
    model = CostModel(profile)
    assert model.job_seconds(many) < model.job_seconds(few)


def test_estimate_seconds_accepts_various_shapes():
    job = _job_with_load([10], [10], workers=1)
    pipeline = PipelineMetrics()
    pipeline.add(job)
    assert estimate_seconds(job) > 0
    assert estimate_seconds(pipeline) == pytest.approx(estimate_seconds([job]))


def test_cluster_profiles():
    assert ClusterProfile.fast_network().seconds_per_byte < ClusterProfile.gigabit_cluster().seconds_per_byte
