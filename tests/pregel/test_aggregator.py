"""Tests for aggregators."""

from __future__ import annotations

import pytest

from repro.pregel.aggregator import (
    Aggregator,
    AggregatorRegistry,
    and_aggregator,
    count_aggregator,
    max_aggregator,
    min_aggregator,
    or_aggregator,
    sum_aggregator,
)


def test_sum_aggregator_accumulates():
    agg = sum_aggregator("total")
    for value in (1, 2, 3):
        agg.accumulate(value)
    assert agg.value == 6


def test_min_max_aggregators():
    low, high = min_aggregator("low"), max_aggregator("high")
    for value in (5, 1, 9):
        low.accumulate(value)
        high.accumulate(value)
    assert low.value == 1
    assert high.value == 9


def test_min_aggregator_starts_empty():
    agg = min_aggregator("low")
    assert agg.value is None


def test_or_and_aggregators():
    any_agg, all_agg = or_aggregator("any"), and_aggregator("all")
    for value in (True, False, True):
        any_agg.accumulate(value)
        all_agg.accumulate(value)
    assert any_agg.value is True
    assert all_agg.value is False


def test_count_aggregator_counts_contributions():
    agg = count_aggregator("n")
    for _ in range(7):
        agg.accumulate("anything")
    assert agg.value == 7


def test_reset_restores_neutral_element():
    agg = sum_aggregator("total")
    agg.accumulate(5)
    agg.reset()
    assert agg.value == 0


def test_merge_combines_partial_aggregates():
    main = sum_aggregator("total")
    partial = main.fresh_copy()
    partial.accumulate(4)
    other = main.fresh_copy()
    other.accumulate(6)
    main.merge(partial)
    main.merge(other)
    assert main.value == 10


def test_merge_ignores_untouched_partials():
    main = min_aggregator("low")
    main.accumulate(3)
    untouched = main.fresh_copy()
    main.merge(untouched)
    assert main.value == 3


def test_registry_superstep_cycle():
    registry = AggregatorRegistry()
    registry.register(sum_aggregator("total"))
    copies = registry.current_copies()
    copies["total"].accumulate(5)
    registry.merge_from(copies)
    snapshot = registry.finish_superstep()
    assert snapshot == {"total": 5}
    # After finishing the superstep the aggregator resets but the value
    # stays readable as the "previous" value.
    assert registry.previous_values() == {"total": 5}
    second = registry.finish_superstep()
    assert second == {"total": 0}


def test_registry_contains_and_get():
    registry = AggregatorRegistry()
    agg = or_aggregator("changed")
    registry.register(agg)
    assert "changed" in registry
    assert "missing" not in registry
    assert registry.get("changed") is agg
    assert registry.get("missing") is None


def test_custom_aggregator_combine_function():
    concat = Aggregator("strings", initial="", combine=lambda a, b: a + b)
    concat.accumulate("a")
    concat.accumulate("b")
    assert concat.value == "ab"
