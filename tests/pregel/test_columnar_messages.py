"""Parity tests for the columnar message plane.

The columnar batch path must be observationally identical to the
scalar reference path: same delivered inboxes (keys, ordering, value
types), same raw counters, and same job-level results for jobs that
flow through an execution backend.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy")

from repro.pregel.engine import PregelEngine, PregelJob
from repro.pregel.message import (
    COLUMNAR_MIN_BATCH,
    MessageRouter,
    min_combiner,
    sum_combiner,
)
from repro.pregel.partitioner import HashPartitioner
from repro.pregel.vertex import Vertex
from repro.ppa.hash_min import run_hash_min
from repro.ppa.sv import GraphInput


def _routers(workers, combiner_factory):
    make = lambda: combiner_factory() if combiner_factory else None
    columnar = MessageRouter(HashPartitioner(workers), make(), columnar=True)
    scalar = MessageRouter(HashPartitioner(workers), make(), columnar=False)
    return columnar, scalar


def _random_batches(seed, batches=3, size=500, value_range=(0, 2**40)):
    rng = random.Random(seed)
    return [
        [
            (rng.randrange(0, 2**63), rng.randrange(*value_range))
            for _ in range(size)
        ]
        for _ in range(batches)
    ]


@pytest.mark.parametrize(
    "combiner_factory", [None, min_combiner, sum_combiner], ids=["none", "min", "sum"]
)
def test_columnar_deliver_matches_scalar(combiner_factory):
    columnar, scalar = _routers(4, combiner_factory)
    for batch in _random_batches(seed=1):
        columnar.post(batch)
        scalar.post(batch)

    assert columnar.raw_message_count == scalar.raw_message_count
    assert columnar.raw_byte_count == scalar.raw_byte_count
    for worker in range(4):
        assert columnar.messages_to_worker(worker) == scalar.messages_to_worker(worker)
        assert columnar.bytes_to_worker(worker) == scalar.bytes_to_worker(worker)

    got = columnar.deliver()
    want = scalar.deliver()
    assert got == want
    # dict ordering (insertion order) must match too — downstream
    # vertex auto-creation iterates inboxes in this order.
    for worker in want:
        assert list(got[worker]) == list(want[worker])
        for target in want[worker]:
            assert [type(value) for value in got[worker][target]] == [
                type(value) for value in want[worker][target]
            ]


def test_duplicate_heavy_batches_match(seed=7):
    rng = random.Random(seed)
    columnar, scalar = _routers(3, min_combiner)
    batch = [(rng.randrange(0, 20), rng.randrange(0, 2**62)) for _ in range(2000)]
    columnar.post(batch)
    scalar.post(batch)
    got, want = columnar.deliver(), scalar.deliver()
    assert got == want
    for worker in want:
        assert list(got[worker]) == list(want[worker])


def test_demotion_replays_in_post_order():
    """A non-int batch after columnar posts demotes without data loss."""
    columnar, scalar = _routers(2, None)
    big = [(index % 50, index) for index in range(COLUMNAR_MIN_BATCH * 2)]
    mixed = [(1, "not-an-int"), (2, 5)]
    for router in (columnar, scalar):
        router.post(big)
        router.post(mixed)
    assert columnar.raw_message_count == scalar.raw_message_count
    assert columnar.raw_byte_count == scalar.raw_byte_count
    got, want = columnar.deliver(), scalar.deliver()
    assert got == want
    for worker in want:
        assert list(got[worker]) == list(want[worker])


def test_small_batches_stay_scalar():
    router = MessageRouter(HashPartitioner(2), columnar=True)
    router.post([(1, 2), (3, 4)])
    assert router._mode == "py"
    assert router.deliver() is not None


def test_sum_overflow_falls_back_to_python_ints():
    """Sums that would wrap a uint64 lane must stay exact."""
    huge = (1 << 63) + 11
    batch = [(5, huge), (5, huge), (6, 1)] * COLUMNAR_MIN_BATCH
    columnar, scalar = _routers(1, sum_combiner)
    columnar.post(batch)
    scalar.post(batch)
    got, want = columnar.deliver(), scalar.deliver()
    assert got == want
    assert got[0][5] == [2 * COLUMNAR_MIN_BATCH * huge]


def test_negative_values_fall_back():
    batch = [(index, -index) for index in range(COLUMNAR_MIN_BATCH * 2)]
    columnar, scalar = _routers(2, None)
    columnar.post(batch)
    scalar.post(batch)
    assert columnar.deliver() == scalar.deliver()


class FloodVertex(Vertex):
    """Sends enough messages per superstep to trigger the columnar path."""

    def compute(self, messages, ctx):
        if ctx.superstep >= 3:
            self.vote_to_halt()
            return
        for neighbor in self.edges:
            ctx.send(neighbor, (self.vertex_id * 31 + ctx.superstep) % 1000)


def _flood_job():
    count = 120
    vertices = [
        FloodVertex(index, value=index, edges=[(index + stride) % count for stride in (1, 3, 7)])
        for index in range(count)
    ]
    return PregelJob(name="flood", vertices=vertices)


def test_engine_results_identical_with_and_without_columnar():
    columnar = PregelEngine(4, backend="serial").run(_flood_job())
    scalar = PregelEngine(4, backend="serial", columnar_messages=False).run(_flood_job())
    assert columnar.vertex_values() == scalar.vertex_values()
    assert columnar.metrics == scalar.metrics
    assert columnar.aggregates == scalar.aggregates


def test_hash_min_parity_across_message_planes():
    rng = random.Random(3)
    adjacency = {}
    count = 400
    for index in range(count):
        neighbors = {(index + 1) % count, rng.randrange(count)}
        neighbors.discard(index)
        adjacency[index] = sorted(neighbors)
    # Symmetrise so components are well-defined.
    for index, neighbors in list(adjacency.items()):
        for neighbor in neighbors:
            if index not in adjacency[neighbor]:
                adjacency[neighbor] = sorted(set(adjacency[neighbor]) | {index})
    graph = GraphInput(adjacency=adjacency)

    columnar = run_hash_min(graph, engine=PregelEngine(4, backend="serial"))
    scalar = run_hash_min(
        graph, engine=PregelEngine(4, backend="serial", columnar_messages=False)
    )
    multiprocess = run_hash_min(graph, engine=PregelEngine(4, backend="multiprocess"))

    assert columnar.vertex_values() == scalar.vertex_values()
    assert columnar.metrics == scalar.metrics
    assert columnar.aggregates == scalar.aggregates
    assert columnar.vertex_values() == multiprocess.vertex_values()
    assert columnar.metrics.summary() == multiprocess.metrics.summary()
