"""Tests for the Vertex base class and compute context."""

from __future__ import annotations

import pytest

from repro.errors import AggregatorError
from repro.pregel.aggregator import AggregatorRegistry, sum_aggregator
from repro.pregel.vertex import ComputeContext, Vertex, VertexFactory, vertices_from_pairs, _estimate_size


class PlainVertex(Vertex):
    def compute(self, messages, ctx):
        self.vote_to_halt()


def _context(**overrides):
    defaults = dict(
        superstep=0,
        outbox=[],
        aggregators={},
        previous_aggregates={},
        num_vertices=10,
    )
    defaults.update(overrides)
    return ComputeContext(**defaults)


def test_base_vertex_compute_is_abstract():
    vertex = Vertex(1)
    with pytest.raises(NotImplementedError):
        vertex.compute([], _context())


def test_vote_to_halt_and_reactivate():
    vertex = PlainVertex(1)
    assert not vertex.halted
    vertex.vote_to_halt()
    assert vertex.halted
    vertex.reactivate()
    assert not vertex.halted


def test_degree_counts_edges():
    assert PlainVertex(1, edges=[2, 3, 4]).degree == 3
    assert PlainVertex(1).degree == 0
    assert PlainVertex(1, edges=123).degree == 0  # opaque edges -> 0


def test_context_send_records_messages_and_bytes():
    outbox = []
    ctx = _context(outbox=outbox)
    ctx.send(5, "hello")
    ctx.send(6, 42)
    assert outbox == [(5, "hello"), (6, 42)]
    assert ctx.messages_sent == 2
    assert ctx.bytes_sent >= len("hello") + 8


def test_context_aggregate_unknown_name_raises():
    ctx = _context()
    with pytest.raises(AggregatorError):
        ctx.aggregate("missing", 1)
    with pytest.raises(AggregatorError):
        ctx.aggregated_value("missing")


def test_context_aggregate_known_name():
    registry = AggregatorRegistry()
    registry.register(sum_aggregator("total"))
    copies = registry.current_copies()
    ctx = _context(aggregators=copies, previous_aggregates={"total": 7})
    ctx.aggregate("total", 3)
    assert copies["total"].value == 3
    assert ctx.aggregated_value("total") == 7


def test_vertex_factory_creates_with_defaults():
    factory = VertexFactory(PlainVertex, default_value="x", default_edges=[1, 2])
    vertex = factory.create(99)
    assert vertex.vertex_id == 99
    assert vertex.value == "x"
    assert vertex.edges == [1, 2]
    # Each created vertex gets its own edges list.
    other = factory.create(100)
    vertex.edges.append(3)
    assert other.edges == [1, 2]


def test_vertices_from_pairs():
    vertices = vertices_from_pairs(PlainVertex, [(1, "a"), (2, "b", [3, 4])])
    assert vertices[0].vertex_id == 1 and vertices[0].edges == []
    assert vertices[1].edges == [3, 4]


def test_estimate_size_covers_common_types():
    assert _estimate_size(None) == 1
    assert _estimate_size(True) == 1
    assert _estimate_size(3) == 8
    assert _estimate_size(2.5) == 8
    assert _estimate_size("abc") == 3
    assert _estimate_size(b"abcd") == 4
    assert _estimate_size((1, "ab")) == 4 + 8 + 2
    assert _estimate_size({"a": 1}) == 4 + 1 + 8
    assert _estimate_size(object()) == 16

    class Sized:
        def message_size(self):
            return 123

    assert _estimate_size(Sized()) == 123
