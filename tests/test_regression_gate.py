"""The bench regression gate: rule matching, tolerances, CLI contract.

The gate is what CI runs between a committed ``BENCH_*.json`` baseline
and a fresh measurement; these tests pin its promises — a genuine 2x
slowdown always fails, run-to-run jitter within tolerance passes, only
rule-matched metrics gate anything, and every committed baseline passes
against itself (so the CI wiring cannot be broken by the baselines).
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import compare, gate
from repro.bench.regression import (
    DEFAULT_RULES,
    context_mismatches,
    numeric_leaves,
    rule_for,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

BASELINE = {
    "schema_version": 2,
    "benchmark": "demo",
    "wall_seconds": 10.0,
    "overhead_fraction": 0.01,
    "jobs_per_sec": 4.0,
    "speedup_4_workers": 3.0,
    "reads": 1200,  # not rule-matched: never gated
    "stages": {"dbg_seconds": 4.0},
}


def _fresh(**overrides) -> dict:
    fresh = json.loads(json.dumps(BASELINE))
    fresh.update(overrides)
    return fresh


def test_identical_payloads_pass():
    results = compare(BASELINE, _fresh())
    assert results and not any(r.regressed for r in results)


def test_two_x_slowdown_fails():
    results = compare(BASELINE, _fresh(wall_seconds=20.0))
    slowed = [r for r in results if r.path == "wall_seconds"]
    assert slowed and slowed[0].regressed


def test_jitter_within_tolerance_passes():
    # +50% wall clock is inside the deliberately loose 75% band.
    results = compare(BASELINE, _fresh(wall_seconds=15.0))
    assert not any(r.regressed for r in results)


def test_nested_seconds_are_gated():
    results = compare(BASELINE, _fresh(stages={"dbg_seconds": 9.0}))
    nested = [r for r in results if r.path == "stages.dbg_seconds"]
    assert nested and nested[0].regressed


def test_overhead_fraction_gates_absolutely():
    ok = compare(BASELINE, _fresh(overhead_fraction=0.03))
    assert not any(r.regressed for r in ok)
    bad = compare(BASELINE, _fresh(overhead_fraction=0.08))
    assert any(r.regressed and r.path == "overhead_fraction" for r in bad)


def test_higher_is_better_direction():
    # Throughput may halve before failing; below half it fails.
    ok = compare(BASELINE, _fresh(jobs_per_sec=2.0, speedup_4_workers=1.5))
    assert not any(r.regressed for r in ok)
    bad = compare(BASELINE, _fresh(jobs_per_sec=1.0))
    assert any(r.regressed and r.path == "jobs_per_sec" for r in bad)
    # Improvements never fail.
    better = compare(BASELINE, _fresh(jobs_per_sec=9.0, wall_seconds=1.0))
    assert not any(r.regressed for r in better)


def test_unmatched_and_one_sided_metrics_are_ignored():
    gated = {r.path for r in compare(BASELINE, _fresh())}
    assert "reads" not in gated
    assert "schema_version" not in gated
    # A metric present only in the fresh payload gates nothing.
    results = compare(BASELINE, _fresh(brand_new_seconds=99.0))
    assert "brand_new_seconds" not in {r.path for r in results}


def test_numeric_leaves_walk_lists_under_parent_key():
    leaves = dict(
        (path, key) for path, key, _ in numeric_leaves({"worker_seconds": [1.0, 2.0]})
    )
    assert leaves == {"worker_seconds[0]": "worker_seconds",
                      "worker_seconds[1]": "worker_seconds"}
    assert rule_for("worker_seconds", DEFAULT_RULES) is not None


def test_mismatched_workload_context_skips_instead_of_gating(tmp_path):
    # A baseline recorded at scale 1.0 vs a fresh run at 0.3 measures
    # a different problem: the gate must skip (exit 0), not compare.
    base = dict(BASELINE, scale=1.0)
    fresh = dict(_fresh(wall_seconds=20.0), scale=0.3)  # would otherwise fail
    assert context_mismatches(base, fresh) == [("scale", 1.0, 0.3)]
    assert context_mismatches(base, dict(base)) == []
    # Context keys absent on either side never block the comparison.
    assert context_mismatches(BASELINE, _fresh(scale=0.3)) == []

    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(base))
    fresh_path = tmp_path / "fresh.json"
    fresh_path.write_text(json.dumps(fresh))
    out = io.StringIO()
    assert gate(base_path, fresh_path, out=out) == 0
    assert "not comparable" in out.getvalue()


def test_gate_cli_exit_codes(tmp_path):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(BASELINE))
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_fresh()))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_fresh(wall_seconds=20.0)))

    assert gate(base, good, out=io.StringIO()) == 0
    assert gate(base, bad, out=io.StringIO()) == 1
    assert gate(base, tmp_path / "missing.json", out=io.StringIO()) == 2


def test_module_entry_point_runs_as_main(tmp_path):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(BASELINE))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.regression", str(base), str(base)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "within tolerance" in proc.stdout
    assert "RuntimeWarning" not in proc.stderr  # lazy package exports


@pytest.mark.parametrize(
    "baseline", sorted(REPO_ROOT.glob("BENCH_*.json")), ids=lambda p: p.name
)
def test_committed_baselines_pass_against_themselves(baseline):
    assert gate(baseline, baseline, out=io.StringIO()) == 0
