"""Legacy ``WorkflowHooks`` compatibility over the event-subscriber shim.

``WorkflowHooks`` used to be called directly by the runner; it is now
the first subscriber of the runner's :class:`WorkflowEvent` stream.
These tests pin the compatibility contract: the old callbacks still
fire, in the old order, with the old arguments — alongside any new
subscribers.
"""

from __future__ import annotations

import pytest

from repro.workflow import (
    ConvertStage,
    Workflow,
    WorkflowEvent,
    WorkflowHooks,
    WorkflowRunner,
)


def _three_stage_workflow() -> Workflow:
    workflow = Workflow("hooked")
    workflow.add(ConvertStage("a", lambda ctx: 1, output="a"))
    workflow.add(ConvertStage("b", lambda ctx: 2, output="b"))
    workflow.add(ConvertStage("c", lambda ctx: 3, output="c"))
    return workflow


def test_legacy_hook_callbacks_fire_in_order():
    calls = []
    hooks = WorkflowHooks(
        on_stage_start=lambda stage, index, total: calls.append(
            ("start", stage.name, index, total)
        ),
        on_stage_end=lambda stage, index, total, seconds: calls.append(
            ("end", stage.name, index, total)
        ),
    )
    WorkflowRunner(num_workers=2, hooks=hooks).run(_three_stage_workflow())
    assert calls == [
        ("start", "a", 0, 3), ("end", "a", 0, 3),
        ("start", "b", 1, 3), ("end", "b", 1, 3),
        ("start", "c", 2, 3), ("end", "c", 2, 3),
    ]


def test_stage_end_seconds_argument_still_passed():
    seconds_seen = []
    hooks = WorkflowHooks(
        on_stage_end=lambda stage, index, total, seconds: seconds_seen.append(seconds)
    )
    WorkflowRunner(num_workers=2, hooks=hooks).run(_three_stage_workflow())
    assert len(seconds_seen) == 3
    assert all(value >= 0 for value in seconds_seen)


def test_checkpoint_and_skip_hooks_fire_through_the_shim(tmp_path):
    checkpoints, skipped = [], []
    hooks = WorkflowHooks(
        on_checkpoint=lambda stage, path: checkpoints.append(stage.name),
        on_stage_skipped=lambda stage, index, total: skipped.append(stage.name),
    )
    runner = WorkflowRunner(num_workers=2, hooks=hooks, checkpoint_dir=tmp_path)
    runner.run(_three_stage_workflow())
    assert checkpoints == ["a", "b", "c"]
    assert skipped == []

    # Resume from a complete checkpoint: every stage arrives as skipped.
    resumed = WorkflowRunner(num_workers=2, hooks=hooks, checkpoint_dir=tmp_path)
    resumed.run(_three_stage_workflow(), resume=True)
    assert skipped == ["a", "b", "c"]


def test_new_subscribers_see_events_after_the_legacy_hooks():
    order = []
    hooks = WorkflowHooks(
        on_stage_start=lambda stage, index, total: order.append(("hook", stage.name))
    )
    runner = WorkflowRunner(num_workers=2, hooks=hooks)

    @runner.subscribe
    def observer(event: WorkflowEvent):
        if event.kind == "stage-start":
            order.append(("subscriber", event.stage.name))

    runner.run(_three_stage_workflow())
    # Legacy hooks are the first subscriber: for each event they run
    # before later-registered observers.
    assert order == [
        ("hook", "a"), ("subscriber", "a"),
        ("hook", "b"), ("subscriber", "b"),
        ("hook", "c"), ("subscriber", "c"),
    ]


def test_subscriber_exception_aborts_the_run():
    # The service's cooperative cancellation rides on this: its
    # on_stage_start hook raises to stop a job at a stage boundary.
    class Stop(Exception):
        pass

    def bomb(stage, index, total):
        if stage.name == "b":
            raise Stop()

    hooks = WorkflowHooks(on_stage_start=bomb)
    with pytest.raises(Stop):
        WorkflowRunner(num_workers=2, hooks=hooks).run(_three_stage_workflow())
