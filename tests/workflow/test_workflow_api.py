"""Unit tests for the declarative workflow API.

Covers the builder's DAG validation, the four typed stage descriptors,
runner hooks, per-stage overrides, and the deprecation shim that keeps
the old imperative ``JobChain`` working.
"""

from __future__ import annotations

import pytest

from repro.errors import WorkflowError
from repro.pregel import PregelJob, min_combiner
from repro.pregel.job import JobChain
from repro.ppa.hash_min import HashMinVertex
from repro.workflow import (
    BranchStage,
    ConvertStage,
    MapReduceStage,
    PregelStage,
    Stage,
    StageExecutor,
    Workflow,
    WorkflowHooks,
    WorkflowRunner,
)


def _noop(ctx):
    return None


# ----------------------------------------------------------------------
# builder validation
# ----------------------------------------------------------------------
def test_empty_workflow_is_invalid():
    with pytest.raises(WorkflowError, match="no stages"):
        Workflow("empty").validate()


def test_duplicate_stage_names_rejected():
    workflow = Workflow("dup")
    workflow.add(ConvertStage("a", _noop))
    with pytest.raises(WorkflowError, match="already has a stage"):
        workflow.add(ConvertStage("a", _noop))


def test_unknown_dependency_rejected():
    workflow = Workflow("dangling")
    workflow.add(ConvertStage("a", _noop), after=["ghost"])
    with pytest.raises(WorkflowError, match="unknown stage 'ghost'"):
        workflow.validate()


def test_self_dependency_rejected():
    workflow = Workflow("selfie")
    workflow.add(ConvertStage("a", _noop), after=["a"])
    with pytest.raises(WorkflowError, match="depends on itself"):
        workflow.validate()


def test_cycle_rejected():
    workflow = Workflow("cyclic")
    workflow.add(ConvertStage("a", _noop), after=["b"])
    workflow.add(ConvertStage("b", _noop), after=["a"])
    with pytest.raises(WorkflowError, match="dependency cycle"):
        workflow.validate()


def test_linear_chain_by_default_and_explicit_fanin():
    workflow = Workflow("dag")
    a = workflow.add(ConvertStage("a", _noop), after=())
    b = workflow.add(ConvertStage("b", _noop), after=())
    workflow.add(ConvertStage("join", _noop), after=[a, b])
    workflow.add(ConvertStage("tail", _noop))  # implicitly after join
    workflow.validate()
    assert workflow.stage_names() == ["a", "b", "join", "tail"]
    assert workflow.dependencies("tail") == ["join"]
    assert set(workflow.dependencies("join")) == {"a", "b"}


def test_describe_lists_stages_in_order():
    workflow = Workflow("pretty", description="for the CLI")
    workflow.add(ConvertStage("first", _noop))
    workflow.add(BranchStage("maybe", condition=lambda ctx: True,
                             then_stages=[ConvertStage("inner", _noop)]))
    text = workflow.describe()
    assert "workflow pretty (2 stages)" in text
    assert "for the CLI" in text
    assert text.index("first") < text.index("maybe")
    assert "then [inner]" in text


def test_unknown_stage_lookup_raises():
    workflow = Workflow("lookup")
    workflow.add(ConvertStage("a", _noop))
    with pytest.raises(WorkflowError, match="no stage named"):
        workflow.stage("nope")


# ----------------------------------------------------------------------
# typed stages end to end
# ----------------------------------------------------------------------
def test_convert_and_mapreduce_and_pregel_stages_run_and_meter():
    workflow = Workflow("mixed")
    workflow.add(
        ConvertStage("make-words", lambda ctx: ["a", "b", "a"], output="words")
    )
    workflow.add(
        MapReduceStage(
            "count-words",
            records="words",
            map_fn=lambda word: [(word, 1)],
            reduce_fn=lambda word, ones: [(word, sum(ones))],
            collect=lambda ctx, result: dict(result.outputs),
            output="counts",
        )
    )
    workflow.add(
        PregelStage(
            "components",
            job_factory=lambda ctx: PregelJob(
                name="components",
                vertices=[
                    HashMinVertex(1, value=1, edges=[2]),
                    HashMinVertex(2, value=2, edges=[1]),
                    HashMinVertex(3, value=3, edges=[]),
                ],
                combiner=min_combiner(),
            ),
            collect=lambda ctx, result: {
                vid: vertex.value for vid, vertex in result.vertices.items()
            },
            output="labels",
        )
    )
    ctx = WorkflowRunner(num_workers=2).run(workflow)
    assert ctx.state["counts"] == {"a": 2, "b": 1}
    assert ctx.state["labels"] == {1: 1, 2: 1, 3: 3}
    # Both jobs were metered into the runner's single pipeline account.
    job_names = [job.job_name for job in ctx.pipeline_metrics.jobs]
    assert job_names == ["count-words", "components"]


def test_mapreduce_records_callable_and_missing_state_key():
    workflow = Workflow("records")
    workflow.add(
        MapReduceStage(
            "double",
            records=lambda ctx: [1, 2],
            map_fn=lambda n: [(n, n)],
            reduce_fn=lambda n, values: [n * 2],
            output="doubled",
        )
    )
    ctx = WorkflowRunner(num_workers=2).run(workflow)
    assert sorted(ctx.state["doubled"].outputs) == [2, 4]

    missing = Workflow("missing")
    missing.add(
        MapReduceStage(
            "boom", records="absent", map_fn=lambda r: [], reduce_fn=lambda k, v: []
        )
    )
    with pytest.raises(WorkflowError, match="no value for 'absent'"):
        WorkflowRunner(num_workers=2).run(missing)


def test_pregel_stage_rejects_non_job_factory():
    workflow = Workflow("badjob")
    workflow.add(PregelStage("nope", job_factory=lambda ctx: "not a job"))
    with pytest.raises(WorkflowError, match="must return a PregelJob"):
        WorkflowRunner(num_workers=2).run(workflow)


def test_branch_stage_takes_the_matching_path_and_records_it():
    def build(flag):
        workflow = Workflow("branchy")
        workflow.add(ConvertStage("seed", lambda ctx: flag, output="flag"))
        workflow.add(
            BranchStage(
                "fork",
                condition=lambda ctx: ctx.state["flag"],
                then_stages=[ConvertStage("then", lambda ctx: "T", output="path")],
                else_stages=[ConvertStage("else", lambda ctx: "F", output="path")],
            )
        )
        return workflow

    taken = WorkflowRunner(num_workers=2).run(build(True))
    assert taken.state["path"] == "T"
    assert taken.state["fork/taken"] is True
    skipped = WorkflowRunner(num_workers=2).run(build(False))
    assert skipped.state["path"] == "F"
    assert skipped.state["fork/taken"] is False


def test_branch_stage_rejects_duplicate_inner_names():
    with pytest.raises(WorkflowError, match="duplicate inner stage"):
        BranchStage(
            "fork",
            condition=lambda ctx: True,
            then_stages=[ConvertStage("x", _noop)],
            else_stages=[ConvertStage("x", _noop)],
        )


# ----------------------------------------------------------------------
# runner: hooks, overrides, custom Stage subclasses
# ----------------------------------------------------------------------
def test_hooks_fire_in_order_including_branch_inners():
    events = []
    hooks = WorkflowHooks(
        on_stage_start=lambda stage, i, n: events.append(("start", stage.name)),
        on_stage_end=lambda stage, i, n, s: events.append(("end", stage.name)),
    )
    workflow = Workflow("hooked")
    workflow.add(ConvertStage("a", _noop))
    workflow.add(
        BranchStage(
            "b",
            condition=lambda ctx: True,
            then_stages=[ConvertStage("b.inner", _noop)],
        )
    )
    WorkflowRunner(num_workers=2, hooks=hooks).run(workflow)
    assert events == [
        ("start", "a"), ("end", "a"),
        ("start", "b"),
        ("start", "b.inner"), ("end", "b.inner"),
        ("end", "b"),
    ]


def test_per_stage_worker_override_shares_one_metrics_account():
    workflow = Workflow("override")
    workflow.add(
        MapReduceStage(
            "narrow",
            records=lambda ctx: [1, 2, 3],
            map_fn=lambda n: [(n % 2, n)],
            reduce_fn=lambda k, values: [sum(values)],
        )
    )
    workflow.add(
        MapReduceStage(
            "wide",
            records=lambda ctx: [1, 2, 3],
            map_fn=lambda n: [(n % 2, n)],
            reduce_fn=lambda k, values: [sum(values)],
            num_workers=7,
        )
    )
    runner = WorkflowRunner(num_workers=2)
    ctx = runner.run(workflow)
    narrow, wide = ctx.pipeline_metrics.jobs
    assert narrow.num_workers == 2
    assert wide.num_workers == 7
    # The override executor funnels into the same pipeline metrics.
    assert runner.executor.pipeline_metrics is ctx.pipeline_metrics


def test_branch_override_is_inherited_by_inner_stages():
    def mapreduce(name, num_workers=None):
        return MapReduceStage(
            name,
            records=lambda ctx: [1, 2],
            map_fn=lambda n: [(n, 1)],
            reduce_fn=lambda k, ones: [sum(ones)],
            num_workers=num_workers,
        )

    workflow = Workflow("branch-override")
    workflow.add(
        BranchStage(
            "fork",
            condition=lambda ctx: True,
            then_stages=[mapreduce("inherits"), mapreduce("own", num_workers=3)],
            num_workers=5,
        )
    )
    workflow.add(mapreduce("outside"))
    ctx = WorkflowRunner(num_workers=2).run(workflow)
    by_name = {job.job_name: job.num_workers for job in ctx.pipeline_metrics.jobs}
    # Inner stages inherit the branch's override unless they carry
    # their own; the override must not leak past the branch.
    assert by_name == {"inherits": 5, "own": 3, "outside": 2}


def test_custom_stage_subclass_runs():
    class Doubler(Stage):
        kind = "doubler"

        def run(self, ctx):
            ctx.state["value"] = ctx.require("value") * 2

    workflow = Workflow("subclass")
    workflow.add(ConvertStage("seed", lambda ctx: 21, output="value"))
    workflow.add(Doubler("double"))
    ctx = WorkflowRunner(num_workers=2).run(workflow)
    assert ctx.state["value"] == 42
    assert "doubler" in workflow.describe()


# ----------------------------------------------------------------------
# the deprecated JobChain shim
# ----------------------------------------------------------------------
def test_jobchain_warns_but_still_executes():
    with pytest.warns(DeprecationWarning, match="JobChain is deprecated"):
        chain = JobChain(num_workers=2)
    assert isinstance(chain, StageExecutor)
    result = chain.run_mapreduce(
        "compat",
        records=["x", "y", "x"],
        map_fn=lambda r: [(r, 1)],
        reduce_fn=lambda k, ones: [(k, sum(ones))],
    )
    assert dict(result.outputs) == {"x": 2, "y": 1}
    assert chain.pipeline_metrics.jobs[0].job_name == "compat"


def test_internal_code_never_constructs_jobchain(recwarn):
    """The whole assembly+scaffolding path must be JobChain-free."""
    import warnings

    from repro import AssemblyConfig, PPAAssembler
    from repro.dna import simulate_paired_dataset

    _genome, pairs = simulate_paired_dataset(4_000, insert_size_mean=300, seed=11)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = PPAAssembler(
            AssemblyConfig(k=15, scaffold=True, num_workers=2)
        ).assemble_paired(pairs)
    assert result.num_contigs() > 0
