"""Concurrent :class:`CheckpointStore` use: shared directories stay safe.

The job service gives every job its own checkpoint directory, but the
store itself must not *require* that isolation: two runners pointed at
one shared root have namespaced file names (workflow slug in the name),
and the orphan ``.tmp`` sweep must never race a sibling store's write
in flight.  These tests pin both properties down, plus the sweep's
actual job (stale orphans do get removed).
"""

from __future__ import annotations

import os
import threading
import time

from repro.workflow import CheckpointStore, ConvertStage, Workflow, WorkflowRunner
from repro.workflow.checkpoint import (
    _TMP_PREFIX,
    ORPHAN_TMP_AGE_SECONDS,
    Checkpoint,
)


def _counting_workflow(name: str, stages: int = 4) -> Workflow:
    workflow = Workflow(name)

    def bump(ctx) -> None:
        ctx.state["count"] = ctx.state.get("count", 0) + 1
        ctx.state.setdefault("trace", []).append(ctx.state["count"])

    for index in range(stages):
        workflow.add(ConvertStage(f"step-{index}", bump))
    return workflow


def test_two_runners_sharing_a_root_do_not_clobber_each_other(tmp_path):
    """Concurrent runs of two workflows into ONE directory stay disjoint."""
    shared = tmp_path / "shared"
    results = {}
    errors = []

    def run(name: str) -> None:
        try:
            runner = WorkflowRunner(num_workers=2, checkpoint_dir=shared)
            ctx = runner.run(_counting_workflow(name), state={"seed": name})
            results[name] = ctx.state["trace"]
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append((name, exc))

    threads = [
        threading.Thread(target=run, args=(name,))
        for name in ("alpha-job", "beta-job")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert results["alpha-job"] == [1, 2, 3, 4]
    assert results["beta-job"] == [1, 2, 3, 4]
    # Four namespaced checkpoints each, none overwritten by the sibling.
    alpha = sorted(p.name for p in shared.glob("checkpoint-*-alpha-job-*.pkl"))
    beta = sorted(p.name for p in shared.glob("checkpoint-*-beta-job-*.pkl"))
    assert len(alpha) == 4 and len(beta) == 4

    # Each workflow resumes from *its own* final checkpoint.
    for name in ("alpha-job", "beta-job"):
        store = CheckpointStore(shared)
        checkpoint = store.latest(name)
        assert checkpoint is not None
        assert checkpoint.workflow == name
        assert checkpoint.completed == 4
        assert checkpoint.state["seed"] == name


def test_sweep_keeps_a_sibling_stores_fresh_tmp_file(tmp_path):
    """A fresh in-flight temp file is a write in progress, not an orphan."""
    in_flight = tmp_path / (_TMP_PREFIX + "sibling-write.tmp")
    in_flight.write_bytes(b"half a checkpoint")

    store = CheckpointStore(tmp_path)
    store.save(
        Checkpoint(workflow="wf", stage_names=["a"], completed=1, state={})
    )

    assert in_flight.exists(), "sweep deleted a sibling's in-flight temp file"


def test_sweep_removes_stale_orphans_only(tmp_path):
    """Stale prefix-matching orphans go; foreign .tmp files never do."""
    stale = tmp_path / (_TMP_PREFIX + "killed-write.tmp")
    stale.write_bytes(b"orphaned")
    foreign = tmp_path / "user-data.tmp"
    foreign.write_bytes(b"not ours")
    ancient = time.time() - 2 * ORPHAN_TMP_AGE_SECONDS
    os.utime(stale, (ancient, ancient))
    os.utime(foreign, (ancient, ancient))

    store = CheckpointStore(tmp_path)
    store.save(
        Checkpoint(workflow="wf", stage_names=["a"], completed=1, state={})
    )

    assert not stale.exists(), "stale orphan survived the sweep"
    assert foreign.exists(), "sweep deleted a file it does not own"


def test_concurrent_saves_into_one_directory_all_land(tmp_path):
    """Many threads saving simultaneously: every file intact afterwards."""
    store = CheckpointStore(tmp_path)
    errors = []

    def save(index: int) -> None:
        try:
            local = CheckpointStore(tmp_path)
            for completed in range(1, 4):
                local.save(
                    Checkpoint(
                        workflow=f"job-{index}",
                        stage_names=["s1", "s2", "s3"],
                        completed=completed,
                        state={"index": index, "completed": completed},
                    )
                )
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=save, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    for index in range(6):
        checkpoint = store.latest(f"job-{index}")
        assert checkpoint is not None
        assert checkpoint.completed == 3
        assert checkpoint.state == {"index": index, "completed": 3}
    # No temp litter left behind by any of the writers.
    assert not list(tmp_path.glob("*.tmp"))
