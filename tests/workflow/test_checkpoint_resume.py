"""Checkpoint/resume correctness: a resumed run is bit-identical.

The acceptance criterion for the workflow redesign: kill an assembly
after stage N, resume it from the checkpoint directory, and get exactly
the contigs, scaffolds, per-stage summaries, and per-superstep
``PipelineMetrics`` an uninterrupted run produces — on both execution
backends.
"""

from __future__ import annotations

import pickle

import pytest

from repro import AssemblyConfig, PPAAssembler
from repro.dna import simulate_paired_dataset
from repro.errors import CheckpointError
from repro.workflow import (
    CheckpointStore,
    ConvertStage,
    Workflow,
    WorkflowHooks,
    WorkflowRunner,
)


class SimulatedCrash(RuntimeError):
    pass


def _crash_after(stage_index: int) -> WorkflowHooks:
    def bomb(stage, index, total, seconds):
        if index == stage_index:
            raise SimulatedCrash(stage.name)

    return WorkflowHooks(on_stage_end=bomb)


@pytest.fixture(scope="module")
def paired_library():
    _genome, pairs = simulate_paired_dataset(
        6_000, insert_size_mean=350, insert_size_std=35, seed=9
    )
    return pairs


def _config(backend: str) -> AssemblyConfig:
    return AssemblyConfig(k=17, scaffold=True, num_workers=2, backend=backend)


def _assert_identical(resumed, baseline):
    assert resumed.contigs == baseline.contigs
    assert resumed.scaffolds == baseline.scaffolds
    assert resumed.scaffolding == baseline.scaffolding
    assert [(s.name, s.detail) for s in resumed.stages] == [
        (s.name, s.detail) for s in baseline.stages
    ]
    # Bit-identical metrics: every job, every superstep, every
    # per-worker counter (dataclass equality is deep).
    assert resumed.metrics == baseline.metrics
    assert resumed.labeling_metrics == baseline.labeling_metrics


@pytest.mark.parametrize("backend", ["serial", "multiprocess"])
def test_killed_then_resumed_assembly_is_bit_identical(
    backend, paired_library, tmp_path
):
    config = _config(backend)
    baseline = PPAAssembler(config).assemble_paired(paired_library)

    checkpoint_dir = tmp_path / "ckpt"
    with pytest.raises(SimulatedCrash):
        PPAAssembler(config).assemble_paired(
            paired_library,
            checkpoint_dir=checkpoint_dir,
            hooks=_crash_after(3),
        )
    assert list(checkpoint_dir.glob("checkpoint-*.pkl"))

    resumed = PPAAssembler(config).assemble_paired(
        paired_library, checkpoint_dir=checkpoint_dir, resume=True
    )
    _assert_identical(resumed, baseline)


@pytest.mark.parametrize("crash_index", [0, 5])
def test_resume_works_from_any_stage_boundary(
    crash_index, paired_library, tmp_path
):
    config = _config("serial")
    baseline = PPAAssembler(config).assemble_paired(paired_library)
    checkpoint_dir = tmp_path / f"ckpt-{crash_index}"
    with pytest.raises(SimulatedCrash):
        PPAAssembler(config).assemble_paired(
            paired_library,
            checkpoint_dir=checkpoint_dir,
            hooks=_crash_after(crash_index),
        )
    resumed = PPAAssembler(config).assemble_paired(
        paired_library, checkpoint_dir=checkpoint_dir, resume=True
    )
    _assert_identical(resumed, baseline)


def test_resume_of_completed_run_recomputes_nothing(paired_library, tmp_path):
    config = _config("serial")
    checkpoint_dir = tmp_path / "done"
    first = PPAAssembler(config).assemble_paired(
        paired_library, checkpoint_dir=checkpoint_dir
    )

    executed = []
    hooks = WorkflowHooks(
        on_stage_start=lambda stage, i, n: executed.append(stage.name)
    )
    again = PPAAssembler(config).assemble_paired(
        paired_library, checkpoint_dir=checkpoint_dir, resume=True, hooks=hooks
    )
    assert executed == []
    _assert_identical(again, first)


def test_strict_resume_without_checkpoint_raises(tmp_path):
    workflow = Workflow("strict")
    workflow.add(ConvertStage("only", lambda ctx: None))
    runner = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path / "empty")
    with pytest.raises(CheckpointError, match="no checkpoint"):
        runner.resume(workflow)


def test_resume_without_checkpoint_dir_raises():
    workflow = Workflow("nodir")
    workflow.add(ConvertStage("only", lambda ctx: None))
    with pytest.raises(CheckpointError, match="no checkpoint directory"):
        WorkflowRunner(num_workers=2).run(workflow, resume=True)


def test_mismatched_workflow_shape_refuses_to_resume(paired_library, tmp_path):
    checkpoint_dir = tmp_path / "shape"
    config = _config("serial")
    with pytest.raises(SimulatedCrash):
        PPAAssembler(config).assemble_paired(
            paired_library, checkpoint_dir=checkpoint_dir, hooks=_crash_after(2)
        )
    # Same workflow name, different stage schedule (two correction
    # rounds instead of one) — resuming must fail loudly.
    import dataclasses

    reshaped = dataclasses.replace(config, error_correction_rounds=2)
    with pytest.raises(CheckpointError, match="differently-shaped"):
        PPAAssembler(reshaped).assemble_paired(
            paired_library, checkpoint_dir=checkpoint_dir, resume=True
        )


def test_corrupt_checkpoint_files_degrade_to_earlier_ones(tmp_path):
    store = CheckpointStore(tmp_path)
    workflow = Workflow("robust")
    workflow.add(ConvertStage("one", lambda ctx: 1, output="x"))
    workflow.add(ConvertStage("two", lambda ctx: ctx.require("x") + 1, output="x"))
    runner = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path)
    runner.run(workflow)

    files = sorted(tmp_path.glob("checkpoint-*.pkl"))
    assert len(files) == 2
    files[-1].write_bytes(b"truncated garbage")
    latest = store.latest("robust")
    assert latest is not None
    assert latest.completed == 1
    # A fresh runner resumes from the surviving checkpoint and redoes
    # only the stage whose checkpoint was lost.
    ctx = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(
        workflow, resume=True
    )
    assert ctx.state["x"] == 2


def test_fresh_run_clears_stale_checkpoints_from_previous_run(tmp_path):
    """A crashed re-run must not resume into an older run's leftovers.

    Without clearing, run 1's higher-numbered checkpoints survive run
    2's lower-numbered overwrites, and run 2's resume silently returns
    run 1's state.
    """
    def build():
        workflow = Workflow("reruns")
        workflow.add(ConvertStage("seed", lambda ctx: None))
        workflow.add(
            ConvertStage("inc1", lambda ctx: ctx.require("x") + 1, output="x")
        )
        workflow.add(
            ConvertStage("inc2", lambda ctx: ctx.require("x") + 1, output="x")
        )
        return workflow

    # Run 1: completes with x=100 → checkpoints 001..003.
    first = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(
        build(), state={"x": 100}
    )
    assert first.state["x"] == 102

    # Run 2: different input, crashes after stage 1.
    with pytest.raises(SimulatedCrash):
        WorkflowRunner(
            num_workers=2, checkpoint_dir=tmp_path, hooks=_crash_after(0)
        ).run(build(), state={"x": 0})

    resumed = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(
        build(), state={"x": 0}, resume=True
    )
    assert resumed.state["x"] == 2  # run 2's data, not run 1's 102


def test_resume_with_different_inputs_is_refused(tmp_path):
    """Same workflow shape, different seed state: resuming must not
    silently return the old run's results for the new inputs."""
    workflow = Workflow("inputs")
    workflow.add(ConvertStage("double", lambda ctx: ctx.require("x") * 2, output="y"))
    workflow.add(ConvertStage("tail", lambda ctx: None))

    # Crash during stage 2: stage 1's checkpoint is already on disk
    # (the end-of-stage hook fires before that stage's own checkpoint
    # is written, so crashing any earlier would leave none).
    with pytest.raises(SimulatedCrash):
        WorkflowRunner(
            num_workers=2, checkpoint_dir=tmp_path, hooks=_crash_after(1)
        ).run(workflow, state={"x": 1})
    assert list(tmp_path.glob("checkpoint-*.pkl"))

    with pytest.raises(CheckpointError, match="different inputs or parameters"):
        WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(
            workflow, state={"x": 2}, resume=True
        )
    # The original inputs still resume fine.
    ctx = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(
        workflow, state={"x": 1}, resume=True
    )
    assert ctx.state["y"] == 2


def test_resume_without_seed_state_uses_the_checkpoints(tmp_path):
    """Omitting the seed state on resume is the natural call and must
    work — the checkpoint's state takes over regardless."""
    workflow = Workflow("stateless-resume")
    workflow.add(ConvertStage("double", lambda ctx: ctx.require("x") * 2, output="y"))
    workflow.add(ConvertStage("tail", lambda ctx: None))

    with pytest.raises(SimulatedCrash):
        WorkflowRunner(
            num_workers=2, checkpoint_dir=tmp_path, hooks=_crash_after(1)
        ).run(workflow, state={"x": 21})

    ctx = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).resume(workflow)
    assert ctx.state["y"] == 42
    # The continued run's checkpoints keep the original fingerprint:
    # a later resume with the original seed state still matches...
    again = WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).resume(
        workflow, state={"x": 21}
    )
    assert again.state["y"] == 42
    # ...and one with different inputs is still refused.
    with pytest.raises(CheckpointError, match="different inputs or parameters"):
        WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).resume(
            workflow, state={"x": 99}
        )


def test_orphaned_tmp_files_are_swept_on_next_write(tmp_path):
    # A *stale* checkpoint temp file (a hard-killed write) is an orphan
    # and gets swept; freshness/ownership edge cases live in
    # test_checkpoint_concurrency.py.
    import os
    import time as _time

    from repro.workflow.checkpoint import _TMP_PREFIX, ORPHAN_TMP_AGE_SECONDS

    orphan = tmp_path / (_TMP_PREFIX + "abc123.tmp")
    orphan.write_bytes(b"half-written checkpoint")
    ancient = _time.time() - 2 * ORPHAN_TMP_AGE_SECONDS
    os.utime(orphan, (ancient, ancient))
    workflow = Workflow("sweeper")
    workflow.add(ConvertStage("only", lambda ctx: None))
    WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(workflow)
    assert not list(tmp_path.glob("*.tmp"))
    assert list(tmp_path.glob("checkpoint-*.pkl"))


def test_other_workflows_checkpoints_survive_clearing(tmp_path):
    one = Workflow("one")
    one.add(ConvertStage("only", lambda ctx: 1, output="x"))
    other = Workflow("other")
    other.add(ConvertStage("only", lambda ctx: 2, output="x"))

    WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(one)
    WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(other)
    # Running `other` fresh must not have deleted `one`'s checkpoint.
    assert CheckpointStore(tmp_path).latest("one") is not None
    assert CheckpointStore(tmp_path).latest("other") is not None


def test_assembly_checkpoints_do_not_repickle_reads(paired_library, tmp_path):
    """Stage ① consumes the reads; later checkpoints must not carry them."""
    checkpoint_dir = tmp_path / "lean"
    PPAAssembler(_config("serial")).assemble_paired(
        paired_library, checkpoint_dir=checkpoint_dir
    )
    store = CheckpointStore(checkpoint_dir)
    latest = store.latest("ppa-assembly")
    assert latest is not None
    assert "reads" not in latest.state
    assert latest.state["pairs"]  # scaffolding's input is still there


def test_scaffold_contigs_resumes_through_a_workflow_context(tmp_path):
    """scaffold_contigs accepts a WorkflowContext as its executor, and a
    checkpointed resume must rebind metrics through it without crashing."""
    from repro.scaffold import scaffold_contigs
    from repro.workflow import StageExecutor
    from repro.workflow.runner import WorkflowContext

    def context():
        executor = StageExecutor(num_workers=2)
        return WorkflowContext(WorkflowRunner(executor=executor), executor)

    contigs = ["ACGTACGTACGTACGTACGTAAAA", "TTTTCCCCGGGGAAAATTTTCCCC"]
    first = scaffold_contigs(
        contigs, [], context(), seed_k=11, checkpoint_dir=tmp_path
    )
    resumed = scaffold_contigs(
        contigs, [], context(), seed_k=11, checkpoint_dir=tmp_path, resume=True
    )
    assert resumed == first
    assert [scaffold.sequence for scaffold in resumed.scaffolds] == sorted(
        contigs, key=lambda s: (-len(s), s)
    )


def test_checkpoint_payload_is_plain_pickle(tmp_path):
    """Checkpoints must stay loadable with nothing but pickle."""
    workflow = Workflow("plain")
    workflow.add(ConvertStage("only", lambda ctx: "payload", output="value"))
    WorkflowRunner(num_workers=2, checkpoint_dir=tmp_path).run(workflow)
    (path,) = tmp_path.glob("checkpoint-*.pkl")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    assert payload["workflow"] == "plain"
    assert payload["completed"] == 1
    assert payload["state"]["value"] == "payload"
    assert payload["stage_names"] == ["only"]
