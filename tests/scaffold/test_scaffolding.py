"""Unit tests for the scaffolding building blocks.

Mapping, link derivation and the driver are tested on hand-built
contigs cut from a known genome, so orientation, ordering and gap
estimates can be asserted exactly.
"""

from __future__ import annotations

import re

import pytest

from repro.dna import PairedReadSimulationConfig, PairedReadSimulator, generate_genome
from repro.dna.sequence import reverse_complement
from repro.workflow import StageExecutor
from repro.scaffold import (
    END_HEAD,
    END_TAIL,
    ContigSeedIndex,
    LinkBundle,
    select_links,
)
from repro.scaffold.links import (
    estimate_insert_size,
    exit_evidence,
    observe_pair,
    observed_insert_size,
)
from repro.scaffold.mapping import ReadMapping
from repro.scaffold.scaffolder import scaffold_contigs


# ----------------------------------------------------------------------
# mapping
# ----------------------------------------------------------------------
def test_seed_index_maps_forward_and_reverse():
    genome = generate_genome(1_000, repeat_fraction=0.0, seed=1)
    index = ContigSeedIndex([genome], seed_k=21)
    read = genome[200:300]
    mapping = index.map_read(read)
    assert mapping == ReadMapping(contig=0, start=200, forward=True)
    mapping = index.map_read(reverse_complement(read))
    assert mapping == ReadMapping(contig=0, start=200, forward=False)


def test_seed_index_drops_repeated_seeds():
    unique = generate_genome(200, repeat_fraction=0.0, seed=2)
    repeated = unique[:50]
    index = ContigSeedIndex([unique + repeated, repeated], seed_k=21)
    # A read entirely inside the repeated segment has only ambiguous
    # seeds and must stay unmapped rather than guess a copy.
    assert index.map_read(repeated[:60]) is None
    # Unique sequence still maps.
    assert index.map_read(unique[60:160]).forward is True


def test_seed_index_uniqueness_is_strand_symmetric():
    unique = generate_genome(300, repeat_fraction=0.0, seed=4)
    segment = unique[100:160]
    # Contig 0 carries the segment forward, contig 1 carries its
    # reverse complement: every seed inside it exists on both strands,
    # so a read from the segment must stay unmapped — a forward-only
    # uniqueness check would silently place it on contig 0.
    index = ContigSeedIndex([unique, reverse_complement(segment)], seed_k=21)
    assert index.map_read(segment[:50]) is None
    assert index.map_read(reverse_complement(segment[:50])) is None
    # Sequence outside the duplicated segment still maps.
    assert index.map_read(unique[200:260]) is not None


def test_seed_index_survives_errors_via_multiple_seeds():
    genome = generate_genome(1_000, repeat_fraction=0.0, seed=3)
    index = ContigSeedIndex([genome], seed_k=21)
    read = list(genome[300:400])
    read[5] = "N"  # kills the first seed only
    mapping = index.map_read("".join(read))
    assert mapping is not None
    assert mapping.start == 300


# ----------------------------------------------------------------------
# link evidence
# ----------------------------------------------------------------------
def test_exit_evidence_points_past_the_contig_end():
    # Forward mate at position 700 of an 800 bp contig: the fragment
    # continues past the tail, with 100 bp inside the contig.
    assert exit_evidence(ReadMapping(0, 700, True), 100, 800) == (END_TAIL, 100)
    # Reverse mate at position 50: fragment exits the head, 150 bp inside.
    assert exit_evidence(ReadMapping(0, 50, False), 100, 800) == (END_HEAD, 150)


def test_observe_pair_links_the_facing_ends():
    lengths = [800, 700]
    observation = observe_pair(
        ReadMapping(0, 700, True),   # exits contig 0's tail, 100 bp inside
        ReadMapping(1, 150, False),  # exits contig 1's head, 250 bp inside
        100, 100, lengths, insert_size=500.0,
    )
    assert observation.key == (0, END_TAIL, 1, END_HEAD)
    assert observation.gap == pytest.approx(150.0)
    # Same contig: no link (that pair calibrates the insert size).
    assert observe_pair(
        ReadMapping(0, 100, True), ReadMapping(0, 400, False), 100, 100, lengths, 500.0
    ) is None


def test_observed_insert_size_needs_proper_fr():
    proper = observed_insert_size(
        ReadMapping(0, 100, True), ReadMapping(0, 420, False), 100, 100
    )
    assert proper == pytest.approx(420.0)
    same_strand = observed_insert_size(
        ReadMapping(0, 100, True), ReadMapping(0, 420, True), 100, 100
    )
    assert same_strand is None
    assert estimate_insert_size([300.0, 400.0, 10_000.0]) == 400.0
    assert estimate_insert_size([]) is None


def test_select_links_enforces_support_and_end_uniqueness():
    strong = LinkBundle(0, END_TAIL, 1, END_HEAD, count=5, mean_gap=10.0)
    weak_conflict = LinkBundle(0, END_TAIL, 2, END_HEAD, count=3, mean_gap=5.0)
    unsupported = LinkBundle(1, END_TAIL, 2, END_TAIL, count=1, mean_gap=0.0)
    selected = select_links([weak_conflict, strong, unsupported], min_support=2)
    # The stronger bundle claims contig 0's tail; the weaker one loses
    # its end and the single-pair bundle never qualifies.
    assert selected == [strong]


# ----------------------------------------------------------------------
# the driver on hand-built contigs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def known_genome_pairs():
    genome = generate_genome(3_000, repeat_fraction=0.0, seed=21)
    simulator = PairedReadSimulator(
        PairedReadSimulationConfig(
            read_length=100,
            coverage=30.0,
            insert_size_mean=400.0,
            insert_size_std=30.0,
            error_rate=0.0,
            ambiguous_rate=0.0,
            seed=22,
        )
    )
    return genome, simulator.simulate(genome)


def test_two_contigs_are_joined_in_order_with_gap(known_genome_pairs):
    genome, pairs = known_genome_pairs
    contig_a, contig_b = genome[0:1_200], genome[1_300:2_300]
    result = scaffold_contigs([contig_a, contig_b], pairs, StageExecutor(num_workers=2))
    assert len(result.scaffolds) == 1
    scaffold = result.scaffolds[0]
    assert [member.position for member in scaffold.members] == [1, 2]
    pieces = re.split("N+", scaffold.sequence)
    forward = pieces == [contig_a, contig_b]
    flipped = pieces == [reverse_complement(contig_b), reverse_complement(contig_a)]
    assert forward or flipped
    gap_run = len(scaffold.sequence) - len(contig_a) - len(contig_b)
    assert abs(gap_run - 100) <= 40  # true gap is 100 bp
    assert abs(result.insert_size - 400.0) < 25.0  # estimated, not configured


def test_reversed_contig_is_flipped_back(known_genome_pairs):
    genome, pairs = known_genome_pairs
    contig_a = genome[0:1_200]
    contig_b = reverse_complement(genome[1_300:2_300])
    result = scaffold_contigs([contig_a, contig_b], pairs, StageExecutor(num_workers=2))
    assert len(result.scaffolds) == 1
    sequence = result.scaffolds[0].sequence
    degapped = re.split("N+", sequence)
    # Whichever global orientation the scaffold chose, its pieces must
    # be colinear slices of one genome strand.
    assert degapped == [genome[0:1_200], genome[1_300:2_300]] or degapped == [
        reverse_complement(genome[1_300:2_300]),
        reverse_complement(genome[0:1_200]),
    ]


def test_three_contigs_order_by_list_ranking(known_genome_pairs):
    genome, pairs = known_genome_pairs
    slices = [genome[0:900], genome[1_000:1_900], genome[2_000:2_900]]
    # Feed them scrambled; equal lengths make the scaffolder's internal
    # (length, sequence) sort differ from genome order, so a correct
    # result can only come from the link evidence.
    result = scaffold_contigs([slices[2], slices[0], slices[1]], pairs, StageExecutor(num_workers=2))
    assert len(result.scaffolds) == 1
    scaffold = result.scaffolds[0]
    assert [member.position for member in scaffold.members] == [1, 2, 3]
    pieces = re.split("N+", scaffold.sequence)
    assert pieces == slices or pieces == [reverse_complement(piece) for piece in reversed(slices)]


def test_unlinked_contigs_stay_singletons(known_genome_pairs):
    genome, pairs = known_genome_pairs
    contig_a = genome[0:1_200]
    stranger = generate_genome(600, repeat_fraction=0.0, seed=99)
    result = scaffold_contigs([contig_a, stranger], pairs, StageExecutor(num_workers=2))
    assert len(result.scaffolds) == 2
    assert result.num_joined() == 0
    assert sorted(result.sequences, key=len) == sorted([contig_a, stranger], key=len)


def test_no_contigs_no_pairs_degenerate_cases():
    chain = StageExecutor(num_workers=2)
    empty = scaffold_contigs([], [], chain)
    assert empty.scaffolds == []
    lone = scaffold_contigs(["ACGTACGTACGTACGTACGTACGTA"], [], chain, seed_k=11)
    assert len(lone.scaffolds) == 1
    assert lone.num_pairs_mapped == 0
