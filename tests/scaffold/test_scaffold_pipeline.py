"""The scaffolding stage inside the full assembly pipeline.

Covers the acceptance properties of the workload: on a fragmented
paired-end dataset the stage must improve contiguity (scaffold N50 ≥
contig N50, strictly when links exist), consume every contig exactly
once, and produce identical scaffolds on the serial and multiprocess
execution backends.
"""

from __future__ import annotations

import pytest

from repro import AssemblyConfig, PPAAssembler
from repro.dna import simulate_paired_dataset
from repro.quality import n50_value, ng50_value

GENOME_LENGTH = 16_000


@pytest.fixture(scope="module")
def fragmented_paired_dataset():
    """Repeats fragment the assembly; the 600 bp inserts bridge the breaks."""
    return simulate_paired_dataset(
        GENOME_LENGTH,
        coverage=22,
        insert_size_mean=600.0,
        insert_size_std=60.0,
        error_rate=0.005,
        repeat_fraction=0.08,
        repeat_length=120,
        seed=9,
    )


@pytest.fixture(scope="module")
def scaffolded(fragmented_paired_dataset):
    _genome, pairs = fragmented_paired_dataset
    config = AssemblyConfig(k=21, scaffold=True, num_workers=4)
    return PPAAssembler(config).assemble_paired(pairs)


def test_scaffolds_improve_contiguity(scaffolded):
    contig_lengths = [len(sequence) for sequence in scaffolded.contigs]
    scaffold_lengths = [len(sequence) for sequence in scaffolded.scaffolds]
    assert n50_value(scaffold_lengths) >= n50_value(contig_lengths)
    assert ng50_value(scaffold_lengths, GENOME_LENGTH) >= ng50_value(
        contig_lengths, GENOME_LENGTH
    )
    scaffolding = scaffolded.scaffolding
    assert scaffolding.num_links_selected > 0
    # With links the improvement must be strict.
    assert n50_value(scaffold_lengths) > n50_value(contig_lengths)
    assert len(scaffold_lengths) < len(contig_lengths)


def test_every_contig_lands_in_exactly_one_scaffold(scaffolded):
    scaffolding = scaffolded.scaffolding
    placed = [
        member.contig
        for scaffold in scaffolding.scaffolds
        for member in scaffold.members
    ]
    assert sorted(placed) == list(range(len(scaffolding.contigs)))
    # Non-gap scaffold bases are exactly the contig bases.
    contig_bp = sum(len(sequence) for sequence in scaffolding.contigs)
    scaffold_bp_without_gaps = sum(
        len(scaffold.sequence) - scaffold.sequence.count("N")
        for scaffold in scaffolding.scaffolds
    )
    assert scaffold_bp_without_gaps == contig_bp


def test_positions_are_consecutive_ranks(scaffolded):
    for scaffold in scaffolded.scaffolding.scaffolds:
        assert [member.position for member in scaffold.members] == list(
            range(1, len(scaffold.members) + 1)
        )
        assert scaffold.members[0].gap_before == 0
        assert all(member.gap_before >= 1 for member in scaffold.members[1:])


def test_stage_summary_and_metrics_are_recorded(scaffolded):
    stage = scaffolded.stage("scaffolding")
    assert stage is not None
    assert stage.detail["scaffolds"] == len(scaffolded.scaffolding.scaffolds)
    assert stage.detail["pairs_mapped"] > 0
    job_names = [job.job_name for job in scaffolded.metrics.jobs]
    assert "scaffolding/link-bundling" in job_names
    assert "scaffolding/components-hash-min" in job_names
    assert "scaffolding/ordering-list-ranking" in job_names


def test_scaffolds_identical_on_serial_and_multiprocess(
    fragmented_paired_dataset, scaffolded
):
    _genome, pairs = fragmented_paired_dataset
    config = AssemblyConfig(k=21, scaffold=True, num_workers=4, backend="multiprocess")
    parallel = PPAAssembler(config).assemble_paired(pairs)
    assert parallel.scaffolding.sequences == scaffolded.scaffolding.sequences
    serial_members = [
        [(member.contig, member.forward, member.gap_before, member.position)
         for member in scaffold.members]
        for scaffold in scaffolded.scaffolding.scaffolds
    ]
    parallel_members = [
        [(member.contig, member.forward, member.gap_before, member.position)
         for member in scaffold.members]
        for scaffold in parallel.scaffolding.scaffolds
    ]
    assert parallel_members == serial_members


def test_scaffold_flag_without_pairs_is_inert(fragmented_paired_dataset):
    _genome, pairs = fragmented_paired_dataset
    config = AssemblyConfig(k=21, scaffold=True, num_workers=4)
    reads = [read for pair in pairs[:300] for read in pair]
    result = PPAAssembler(config).assemble(reads)
    assert result.scaffolding is None
    assert result.scaffolds == []
    with pytest.raises(ValueError, match="no scaffolds"):
        result.write_scaffold_fasta("/dev/null")


def test_config_validation():
    from repro.errors import PipelineConfigError

    with pytest.raises(PipelineConfigError, match="scaffold_min_links"):
        AssemblyConfig(scaffold_min_links=0)
    with pytest.raises(PipelineConfigError, match="scaffold_insert_size"):
        AssemblyConfig(scaffold_insert_size=-5.0)
    tuned = AssemblyConfig().with_scaffolding(min_links=3, insert_size=450.0)
    assert tuned.scaffold and tuned.scaffold_min_links == 3
    assert tuned.scaffold_insert_size == 450.0
