"""Tests for edge polarity (Property 1) and the Figure 8 adjacency formats."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dbg.bitmap import (
    NULL_ITEM,
    POLARITY_CLASSES,
    AdjacencyBitmap,
    bit_position,
    decode_item,
    encode_item,
    expand_bitmap,
    is_null_item,
    neighbor_kmer_id,
    split_bit_position,
)
from repro.dbg.polarity import (
    LABEL_H,
    LABEL_L,
    PORT_IN,
    PORT_OUT,
    PolarizedEdge,
    complement_label,
    label_for_source_port,
    label_for_target_port,
    other_port,
    reverse_polarity,
    source_port,
    target_port,
)
from repro.dna.encoding import decode_kmer, encode_kmer
from repro.dna.kmer import extract_kplus1mers
from repro.dna.sequence import reverse_complement

dna = st.text(alphabet="ACGT", min_size=8, max_size=80)


# ----------------------------------------------------------------------
# polarity
# ----------------------------------------------------------------------
def test_complement_label():
    assert complement_label(LABEL_L) == LABEL_H
    assert complement_label(LABEL_H) == LABEL_L
    with pytest.raises(ValueError):
        complement_label("X")


def test_property1_reverse_polarity():
    """Property 1: ⟨X:Y⟩ on (u,v) is ⟨Ȳ:X̄⟩ on (v,u)."""
    assert reverse_polarity("LL") == "HH"
    assert reverse_polarity("LH") == "LH"
    assert reverse_polarity("HL") == "HL"
    assert reverse_polarity("HH") == "LL"
    with pytest.raises(ValueError):
        reverse_polarity("L")


def test_reverse_polarity_is_involution():
    for polarity in POLARITY_CLASSES:
        assert reverse_polarity(reverse_polarity(polarity)) == polarity


def test_port_label_round_trip():
    for label in (LABEL_L, LABEL_H):
        assert label_for_source_port(source_port(label)) == label
        assert label_for_target_port(target_port(label)) == label


def test_other_port():
    assert other_port(PORT_IN) == PORT_OUT
    assert other_port(PORT_OUT) == PORT_IN
    with pytest.raises(ValueError):
        other_port(5)


def test_polarized_edge_equivalence_ports():
    edge = PolarizedEdge(source=1, target=2, polarity="LH", coverage=3)
    reversed_edge = edge.reversed()
    assert reversed_edge.source == 2 and reversed_edge.target == 1
    assert reversed_edge.polarity == "LH"
    # The two writings attach to the same ports of the same vertices.
    source_p, target_p = edge.ports()
    reverse_source_p, reverse_target_p = reversed_edge.ports()
    assert (source_p, target_p) == (reverse_target_p, reverse_source_p)


def test_polarized_edge_canonical_form_deterministic():
    edge = PolarizedEdge(source=9, target=2, polarity="HL")
    assert edge.canonical_form() == edge.reversed().canonical_form()


# ----------------------------------------------------------------------
# bit positions and items
# ----------------------------------------------------------------------
def test_bit_position_round_trip():
    seen = set()
    for polarity in POLARITY_CLASSES:
        for direction in ("in", "out"):
            for base_bits in range(4):
                position = bit_position(polarity, direction, base_bits)
                assert 0 <= position < 32
                assert position not in seen
                seen.add(position)
                assert split_bit_position(position) == (polarity, direction, base_bits)
    assert len(seen) == 32


def test_bit_position_validation():
    with pytest.raises(ValueError):
        bit_position("XX", "in", 0)
    with pytest.raises(ValueError):
        bit_position("LL", "sideways", 0)
    with pytest.raises(ValueError):
        bit_position("LL", "in", 4)
    with pytest.raises(ValueError):
        split_bit_position(32)


def test_item_encode_decode_round_trip():
    for polarity in POLARITY_CLASSES:
        for direction in ("in", "out"):
            for base_bits in range(4):
                item = encode_item(base_bits, direction, polarity)
                assert item < 0x80
                assert decode_item(item) == (base_bits, direction, polarity)


def test_null_item():
    assert NULL_ITEM == 0b1000_0000
    assert is_null_item(NULL_ITEM)
    with pytest.raises(ValueError):
        decode_item(NULL_ITEM)
    with pytest.raises(ValueError):
        decode_item(0b0110_0000)


# ----------------------------------------------------------------------
# adjacency bitmap
# ----------------------------------------------------------------------
def test_bitmap_add_and_query():
    bitmap = AdjacencyBitmap()
    bitmap.add("LH", "out", 2, coverage=3)
    assert bitmap.has("LH", "out", 2)
    assert not bitmap.has("LH", "out", 1)
    assert bitmap.coverage_at("LH", "out", 2) == 3
    assert bitmap.degree() == 1


def test_bitmap_duplicate_adds_accumulate_coverage():
    bitmap = AdjacencyBitmap()
    bitmap.add("LL", "in", 0)
    bitmap.add("LL", "in", 0, coverage=4)
    assert bitmap.degree() == 1
    assert bitmap.coverage_at("LL", "in", 0) == 5


def test_bitmap_merge():
    left, right = AdjacencyBitmap(), AdjacencyBitmap()
    left.add("LL", "out", 1, coverage=2)
    right.add("LL", "out", 1, coverage=3)
    right.add("HH", "in", 0, coverage=1)
    left.merge(right)
    assert left.degree() == 2
    assert left.coverage_at("LL", "out", 1) == 5


def test_bitmap_entries_and_copy():
    bitmap = AdjacencyBitmap()
    bitmap.add("HL", "in", 3, coverage=7)
    entries = list(bitmap.entries())
    assert entries == [("HL", "in", 3, 7)]
    clone = bitmap.copy()
    clone.add("LL", "out", 0)
    assert bitmap.degree() == 1 and clone.degree() == 2


# ----------------------------------------------------------------------
# neighbour reconstruction (the heart of the compact format)
# ----------------------------------------------------------------------
def test_paper_recipe_hh_out_neighbour():
    """Section IV-A: ⟨H:H⟩ out-edge reconstructs rc(append(rc(self), base))."""
    k = 4
    vertex = "ACGG"
    base = "C"
    expected = reverse_complement(reverse_complement(vertex)[1:] + base)
    got = neighbor_kmer_id(encode_kmer(vertex), k, "HH", "out", encode_kmer(base))
    assert decode_kmer(got, k) == expected


@given(dna)
def test_property_bitmap_reconstructs_observed_edges(sequence):
    """Building bitmaps from (k+1)-mers and expanding them recovers the edges."""
    k = 5
    if len(sequence) < k + 1:
        return
    bitmaps = {}
    expected_edges = set()
    for edge in extract_kplus1mers(sequence, k):
        polarity = edge.polarity()
        appended = edge.edge_id & 0b11
        prepended = (edge.edge_id >> (2 * k)) & 0b11
        bitmaps.setdefault(edge.prefix.kmer_id, AdjacencyBitmap()).add(polarity, "out", appended)
        bitmaps.setdefault(edge.suffix.kmer_id, AdjacencyBitmap()).add(polarity, "in", prepended)
        expected_edges.add((edge.prefix.kmer_id, edge.suffix.kmer_id))

    for vertex_id, bitmap in bitmaps.items():
        for neighbor, _polarity, direction, _base, _coverage in expand_bitmap(vertex_id, k, bitmap):
            if direction == "out":
                assert (vertex_id, neighbor) in expected_edges
            else:
                assert (neighbor, vertex_id) in expected_edges


def test_neighbor_kmer_id_validation():
    with pytest.raises(ValueError):
        neighbor_kmer_id(0, 4, "L", "out", 0)
    with pytest.raises(ValueError):
        neighbor_kmer_id(0, 4, "LL", "diagonal", 0)
