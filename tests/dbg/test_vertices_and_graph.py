"""Tests for k-mer/contig vertex records, vertex IDs and the graph container."""

from __future__ import annotations

import pytest

from repro.dbg.contig_vertex import END_IN, END_OUT, ContigEnd, ContigVertexData
from repro.dbg.graph import DeBruijnGraph
from repro.dbg.ids import ContigIdAllocator, describe_id
from repro.dbg.kmer_vertex import (
    TYPE_AMBIGUOUS,
    TYPE_DEAD_END,
    TYPE_UNAMBIGUOUS,
    ContigLink,
    KmerVertexData,
)
from repro.dbg.polarity import PORT_IN, PORT_OUT
from repro.dna.encoding import NULL_ID, encode_kmer, make_contig_id
from repro.errors import GraphFormatError


def _kmer(sequence):
    return encode_kmer(sequence)


# ----------------------------------------------------------------------
# k-mer vertex
# ----------------------------------------------------------------------
def test_vertex_type_dead_end():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN)
    assert vertex.vertex_type() == TYPE_DEAD_END
    assert vertex.is_unambiguous()


def test_vertex_type_unambiguous():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN)
    vertex.add_adjacency(_kmer("TACG"), PORT_IN, PORT_OUT)
    assert vertex.vertex_type() == TYPE_UNAMBIGUOUS


def test_vertex_type_ambiguous_same_port():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN)
    vertex.add_adjacency(_kmer("CGTC"), PORT_OUT, PORT_IN)
    assert vertex.vertex_type() == TYPE_AMBIGUOUS
    assert vertex.is_ambiguous()


def test_vertex_type_ambiguous_three_neighbors():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN)
    vertex.add_adjacency(_kmer("CGTC"), PORT_OUT, PORT_IN)
    vertex.add_adjacency(_kmer("TACG"), PORT_IN, PORT_OUT)
    assert vertex.vertex_type() == TYPE_AMBIGUOUS


def test_duplicate_adjacency_merges_coverage():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN, coverage=2)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN, coverage=3)
    assert vertex.degree == 1
    assert vertex.adjacencies[0].coverage == 5


def test_parallel_contig_adjacencies_stay_distinct():
    """Bubble case: two contigs between the same k-mers must not merge."""
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    far = _kmer("GGGG")
    vertex.add_adjacency(far, PORT_OUT, PORT_IN, coverage=4, via_contig=ContigLink(make_contig_id(0, 1), 100, 4))
    vertex.add_adjacency(far, PORT_OUT, PORT_IN, coverage=2, via_contig=ContigLink(make_contig_id(0, 2), 101, 2))
    assert vertex.degree == 2


def test_remove_adjacency_by_neighbor_and_port():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN)
    vertex.add_adjacency(_kmer("CGTA"), PORT_IN, PORT_OUT)
    assert vertex.remove_adjacency(_kmer("CGTA"), my_port=PORT_OUT) == 1
    assert vertex.degree == 1
    assert vertex.remove_adjacency(_kmer("CGTA")) == 1
    assert vertex.degree == 0


def test_remove_contig_adjacency():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    contig_id = make_contig_id(1, 1)
    vertex.add_adjacency(NULL_ID, PORT_OUT, 0, via_contig=ContigLink(contig_id, 50, 3))
    assert vertex.remove_contig_adjacency(contig_id) == 1
    assert vertex.degree == 0


def test_other_adjacency_and_lookup():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    a, b = _kmer("CGTA"), _kmer("TACG")
    vertex.add_adjacency(a, PORT_OUT, PORT_IN)
    vertex.add_adjacency(b, PORT_IN, PORT_OUT)
    assert vertex.adjacency_to(a).neighbor_id == a
    assert vertex.adjacency_to(_kmer("GGGG")) is None
    assert vertex.other_adjacency(excluding_neighbor=a).neighbor_id == b


def test_vertex_sequence_and_min_coverage():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    assert vertex.sequence() == "ACGT"
    assert vertex.min_coverage() == 0
    vertex.add_adjacency(_kmer("CGTA"), PORT_OUT, PORT_IN, coverage=7)
    vertex.add_adjacency(_kmer("TACG"), PORT_IN, PORT_OUT, coverage=3)
    assert vertex.min_coverage() == 3


def test_neighbor_ids_excludes_null_by_default():
    vertex = KmerVertexData(_kmer("ACGT"), 4)
    vertex.add_adjacency(NULL_ID, PORT_OUT, 0)
    vertex.add_adjacency(_kmer("TACG"), PORT_IN, PORT_OUT)
    assert vertex.neighbor_ids() == [_kmer("TACG")]
    assert len(vertex.neighbor_ids(include_null=True)) == 2


# ----------------------------------------------------------------------
# contig vertex
# ----------------------------------------------------------------------
def test_contig_types_and_endpoints():
    kmer_a, kmer_b = _kmer("AAAA"), _kmer("CCCC")
    contig = ContigVertexData(
        contig_id=make_contig_id(0, 1),
        sequence="ACGTACGT",
        coverage=9,
        in_end=ContigEnd(kmer_a, PORT_OUT, 5),
        out_end=ContigEnd(kmer_b, PORT_IN, 6),
    )
    assert contig.vertex_type() == TYPE_UNAMBIGUOUS
    assert contig.ordered_neighbor_pair() == tuple(sorted((kmer_a, kmer_b)))
    assert contig.neighbor_ids() == [kmer_a, kmer_b]
    assert not contig.is_isolated()
    assert contig.length == 8


def test_contig_dangling_and_isolated():
    contig = ContigVertexData(make_contig_id(0, 2), "ACGT" * 10, coverage=3)
    assert contig.vertex_type() == TYPE_DEAD_END
    assert contig.is_isolated()
    assert contig.ordered_neighbor_pair() is None
    assert contig.is_tip_candidate(length_threshold=100)
    assert not contig.is_tip_candidate(length_threshold=10)


def test_contig_end_accessors():
    contig = ContigVertexData(make_contig_id(0, 3), "ACGTACGT", coverage=1)
    end = ContigEnd(_kmer("AAAA"), PORT_IN, 2)
    contig.set_end(END_OUT, end)
    assert contig.end(END_OUT) == end
    assert contig.end(END_IN).is_dead_end()
    with pytest.raises(ValueError):
        contig.end("sideways")
    with pytest.raises(ValueError):
        contig.set_end("sideways", end)


def test_contig_gc_and_reverse_complement():
    contig = ContigVertexData(make_contig_id(0, 4), "GGCC", coverage=1)
    assert contig.gc_fraction() == 1.0
    assert contig.reverse_complement_sequence() == "GGCC"


# ----------------------------------------------------------------------
# IDs
# ----------------------------------------------------------------------
def test_contig_id_allocator_per_worker():
    allocator = ContigIdAllocator()
    first = allocator.allocate(0)
    second = allocator.allocate(0)
    third = allocator.allocate(5)
    assert first != second != third
    assert allocator.allocated_count(0) == 2
    assert allocator.allocated_count(5) == 1
    assert allocator.total_allocated() == 3


def test_describe_id():
    assert describe_id(NULL_ID) == "NULL"
    assert describe_id(make_contig_id(2, 9)) == "contig(worker=2, order=9)"
    assert describe_id(_kmer("ACGT")).startswith("kmer(")


# ----------------------------------------------------------------------
# graph container
# ----------------------------------------------------------------------
def _simple_graph():
    graph = DeBruijnGraph(4)
    a, b, c = _kmer("AAAA"), _kmer("AAAC"), _kmer("AACC")
    graph.add_edge(a, PORT_OUT, b, PORT_IN, coverage=3)
    graph.add_edge(b, PORT_OUT, c, PORT_IN, coverage=2)
    return graph, (a, b, c)


def test_graph_add_edge_is_mirrored():
    graph, (a, b, _c) = _simple_graph()
    graph.validate()
    assert graph.kmers[a].adjacency_to(b).coverage == 3
    assert graph.kmers[b].adjacency_to(a).coverage == 3


def test_graph_counts_and_statistics():
    graph, (a, b, c) = _simple_graph()
    assert graph.kmer_count() == 3
    assert graph.edge_count() == 2
    stats = graph.statistics().as_dict()
    assert stats["kmer_vertices"] == 3
    assert stats["type_1"] == 2
    assert stats["type_1_1"] == 1


def test_graph_remove_kmer_cleans_adjacencies():
    graph, (a, b, c) = _simple_graph()
    graph.remove_kmer(b)
    assert b not in graph
    assert graph.kmers[a].adjacency_to(b) is None
    graph.validate()


def test_graph_remove_contig_cleans_kmer_links():
    graph, (a, b, c) = _simple_graph()
    contig_id = make_contig_id(0, 1)
    graph.add_contig(
        ContigVertexData(contig_id, "AAAACC", coverage=1, in_end=ContigEnd(a, PORT_OUT, 1))
    )
    graph.kmers[a].add_adjacency(NULL_ID, PORT_OUT, 0, via_contig=ContigLink(contig_id, 6, 1))
    graph.remove_contig(contig_id)
    assert contig_id not in graph.contigs
    assert all(adj.via_contig is None for adj in graph.kmers[a].adjacencies)


def test_graph_duplicate_contig_rejected():
    graph, _ = _simple_graph()
    contig_id = make_contig_id(0, 1)
    graph.add_contig(ContigVertexData(contig_id, "AAAA", coverage=1))
    with pytest.raises(GraphFormatError):
        graph.add_contig(ContigVertexData(contig_id, "CCCC", coverage=1))


def test_graph_validation_detects_missing_mirror():
    graph, (a, b, _c) = _simple_graph()
    graph.kmers[b].remove_adjacency(a)
    with pytest.raises(GraphFormatError):
        graph.validate()


def test_graph_validation_detects_short_contig():
    graph, _ = _simple_graph()
    graph.add_contig(ContigVertexData(make_contig_id(0, 1), "AC", coverage=1))
    with pytest.raises(GraphFormatError):
        graph.validate()


def test_graph_rejects_bad_k():
    with pytest.raises(GraphFormatError):
        DeBruijnGraph(0)


def test_graph_vertices_of_type_queries():
    graph, (a, b, c) = _simple_graph()
    graph.add_edge(b, PORT_OUT, _kmer("AACG"), PORT_IN)
    assert b in graph.ambiguous_vertices()
    assert set(graph.unambiguous_vertices()) == {a, c, _kmer("AACG")}


def test_graph_self_loop_edge_count():
    graph = DeBruijnGraph(4)
    a = _kmer("ATAT")
    graph.add_edge(a, PORT_OUT, a, PORT_OUT)
    assert graph.edge_count() == 1
