"""Tests for the optional coverage-pruning operation and cross-operation invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembler import (
    AssemblyConfig,
    PPAAssembler,
    build_dbg,
    label_contigs,
    merge_contigs,
    prune_low_coverage_contigs,
)
from repro.dbg.ids import ContigIdAllocator
from repro.dna.io_fastq import reads_from_strings
from repro.dna.sequence import reverse_complement
from repro.dna.simulator import ReadSimulationConfig, ReadSimulator, generate_genome
from repro.workflow import StageExecutor


def _merged_graph(reads, k=5, threshold=0, workers=2):
    config = AssemblyConfig(
        k=k, coverage_threshold=threshold, tip_length_threshold=0, num_workers=workers
    )
    chain = StageExecutor(num_workers=workers)
    graph = build_dbg(reads, config, chain).graph
    labeling = label_contigs(graph, config, chain)
    merge_contigs(graph, labeling, config, chain, ContigIdAllocator())
    return graph, config, chain


# ----------------------------------------------------------------------
# coverage pruning (the paper's suggested user extension)
# ----------------------------------------------------------------------
def _mixed_coverage_reads():
    well_covered = "CAGCACGAAACTTGTTGGCATCCGTAGG"
    barely_covered = "TTACCGTCAATGCTAGCTTAAGGT"
    return reads_from_strings([well_covered] * 10 + [barely_covered])


def test_pruning_removes_low_coverage_contigs():
    graph, config, chain = _merged_graph(_mixed_coverage_reads(), k=5)
    before = graph.contig_count()
    result = prune_low_coverage_contigs(
        graph, config, chain, absolute_threshold=3, relative_threshold=None, protect_length=10_000
    )
    assert result.num_pruned >= 1
    assert graph.contig_count() == before - result.num_pruned
    assert all(contig.coverage >= 3 for contig in graph.contigs.values())
    graph.validate()


def test_pruning_relative_threshold_uses_median():
    graph, config, chain = _merged_graph(_mixed_coverage_reads(), k=5)
    result = prune_low_coverage_contigs(
        graph, config, chain, absolute_threshold=None, relative_threshold=0.5,
        protect_length=10_000,
    )
    assert result.median_coverage > 0
    assert result.threshold_used == pytest.approx(0.5 * result.median_coverage)


def test_pruning_protects_long_contigs():
    graph, config, chain = _merged_graph(_mixed_coverage_reads(), k=5)
    before = graph.contig_count()
    result = prune_low_coverage_contigs(
        graph, config, chain, absolute_threshold=10**6, relative_threshold=None, protect_length=1
    )
    # Every contig is below the absurd threshold but all are >= 1 bp long
    # and therefore protected — nothing is pruned.
    assert result.num_pruned == 0
    assert graph.contig_count() == before


def test_pruning_on_empty_graph():
    config = AssemblyConfig(k=5, num_workers=2)
    chain = StageExecutor(num_workers=2)
    from repro.dbg.graph import DeBruijnGraph

    graph = DeBruijnGraph(5)
    result = prune_low_coverage_contigs(graph, config, chain)
    assert result.num_pruned == 0
    assert result.median_coverage == 0.0


def test_pruning_records_metrics():
    graph, config, chain = _merged_graph(_mixed_coverage_reads(), k=5)
    before = len(chain.metrics().jobs)
    prune_low_coverage_contigs(graph, config, chain, absolute_threshold=3)
    assert len(chain.metrics().jobs) == before + 1
    assert "coverage-pruning" in chain.metrics().jobs[-1].job_name


# ----------------------------------------------------------------------
# property-based invariants of the whole pipeline
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_clean_assembly_contigs_are_substrings(seed):
    """Without errors or repeats, every contig is an exact genome substring."""
    genome = generate_genome(1_500, repeat_fraction=0.0, seed=seed)
    simulator = ReadSimulator(
        ReadSimulationConfig(read_length=60, coverage=12, error_rate=0.0, seed=seed + 1)
    )
    reads = simulator.simulate(genome)
    config = AssemblyConfig(k=15, coverage_threshold=0, tip_length_threshold=40, num_workers=3)
    result = PPAAssembler(config).assemble(reads)
    assert result.num_contigs() >= 1
    for contig in result.contigs:
        assert contig in genome or reverse_complement(contig) in genome
    # Contigs cover most of the genome and do not massively over-assemble.
    assert 0.8 * len(genome) <= result.total_length() <= 1.1 * len(genome)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_assembly_total_length_bounded_with_errors(seed):
    """Even with sequencing errors the assembly never balloons past the genome."""
    genome = generate_genome(2_000, repeat_fraction=0.02, seed=seed)
    simulator = ReadSimulator(
        ReadSimulationConfig(read_length=70, coverage=18, error_rate=0.01, seed=seed + 1)
    )
    reads = simulator.simulate(genome)
    config = AssemblyConfig(k=17, coverage_threshold=1, tip_length_threshold=50, num_workers=3)
    result = PPAAssembler(config).assemble(reads)
    assert result.total_length() <= 1.25 * len(genome)
    # The graph left behind is structurally consistent.
    result.graph.validate()


def test_merging_hairpin_selfloop_keeps_boundary_wired():
    """Regression: a chain node whose far port links back to itself.

    Hypothesis found (seed 6471) that such a hairpin group was
    classified as a pure cycle, so merging discarded its real start
    boundary and the bordering ambiguous k-mer kept a dangling edge
    into the deleted node.  The hairpin must merge as a path whose far
    end simply dead-ends.
    """
    genome = generate_genome(1_200, repeat_fraction=0.05, repeat_length=80, seed=6471)
    simulator = ReadSimulator(
        ReadSimulationConfig(read_length=60, coverage=15, error_rate=0.008, seed=6472)
    )
    reads = simulator.simulate(genome)
    config = AssemblyConfig(
        k=15, coverage_threshold=0, tip_length_threshold=40, num_workers=3
    )
    chain = StageExecutor(num_workers=3)
    graph = build_dbg(reads, config, chain).graph
    labeling = label_contigs(graph, config, chain)
    # The dataset contains a self-looping ⟨1-1⟩ node bordering an
    # ambiguous vertex; without the fix this validate() reports a
    # missing-neighbour reference.
    merge_contigs(graph, labeling, config, chain, ContigIdAllocator())
    graph.validate()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_graph_valid_after_every_operation(seed):
    """Each operation leaves the de Bruijn graph structurally valid."""
    from repro.assembler import filter_bubbles, remove_tips

    genome = generate_genome(1_200, repeat_fraction=0.05, repeat_length=80, seed=seed)
    simulator = ReadSimulator(
        ReadSimulationConfig(read_length=60, coverage=15, error_rate=0.008, seed=seed + 1)
    )
    reads = simulator.simulate(genome)
    config = AssemblyConfig(k=15, coverage_threshold=0, tip_length_threshold=40, num_workers=3)
    chain = StageExecutor(num_workers=3)
    allocator = ContigIdAllocator()  # shared across rounds, as the pipeline does

    graph = build_dbg(reads, config, chain).graph
    graph.validate()
    labeling = label_contigs(graph, config, chain)
    merge_contigs(graph, labeling, config, chain, allocator)
    graph.validate()
    filter_bubbles(graph, config, chain)
    graph.validate()
    remove_tips(graph, config, chain)
    graph.validate()
    relabeling = label_contigs(graph, config, chain, include_contigs=True)
    merge_contigs(graph, relabeling, config, chain, allocator)
    graph.validate()
