"""Tests for the assembly configuration and operation ① (DBG construction)."""

from __future__ import annotations

import pytest

from repro.assembler import AssemblyConfig, build_dbg
from repro.assembler.config import LABELING_LIST_RANKING, LABELING_SIMPLIFIED_SV
from repro.dbg.kmer_vertex import TYPE_AMBIGUOUS, TYPE_UNAMBIGUOUS
from repro.dna.io_fastq import Read, reads_from_strings
from repro.dna.sequence import reverse_complement
from repro.errors import PipelineConfigError
from repro.workflow import StageExecutor


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_default_config_is_valid():
    config = AssemblyConfig()
    assert config.k == 21
    assert config.labeling_method == LABELING_LIST_RANKING


def test_config_validation():
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(k=0)
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(k=50)
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(k=20)  # even k would allow palindromic k-mers
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(coverage_threshold=-1)
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(tip_length_threshold=-5)
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(bubble_edit_distance=-1)
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(labeling_method="magic")
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(num_workers=0)
    with pytest.raises(PipelineConfigError):
        AssemblyConfig(error_correction_rounds=-1)


def test_config_copies():
    config = AssemblyConfig(k=21)
    assert config.with_workers(8).num_workers == 8
    assert config.with_labeling(LABELING_SIMPLIFIED_SV).labeling_method == LABELING_SIMPLIFIED_SV
    paper = config.paper_defaults()
    assert paper.k == 31 and paper.tip_length_threshold == 80 and paper.bubble_edit_distance == 5
    # original untouched (frozen dataclass copies)
    assert config.k == 21


# ----------------------------------------------------------------------
# DBG construction
# ----------------------------------------------------------------------
def _build(reads, k=5, threshold=0, workers=2):
    config = AssemblyConfig(k=k, coverage_threshold=threshold, num_workers=workers)
    chain = StageExecutor(num_workers=workers)
    return build_dbg(reads, config, chain), chain


def test_single_read_produces_path_graph():
    reads = reads_from_strings(["GCTAAAGACA"])
    result, _ = _build(reads, k=5, threshold=0)
    graph = result.graph
    # A 10 bp read with k=5 contains five (k+1)-mers, all distinct.
    assert result.distinct_kplus1mers == 5
    graph.validate()
    types = [vertex.vertex_type() for vertex in graph.kmers.values()]
    assert types.count("1") == 2  # the two path ends
    assert all(t in ("1", "1-1") for t in types)


def test_reverse_complement_reads_merge_into_same_graph():
    sequence = "CAGCACGAAACTTG"
    forward, _ = _build(reads_from_strings([sequence]), k=5)
    both, _ = _build(reads_from_strings([sequence, reverse_complement(sequence)]), k=5)
    assert set(forward.graph.kmers) == set(both.graph.kmers)
    # Edge coverages double when the same molecule is read from both strands.
    for kmer_id, vertex in forward.graph.kmers.items():
        merged = both.graph.kmers[kmer_id]
        for adjacency in vertex.adjacencies:
            counterpart = [
                other
                for other in merged.adjacencies
                if other.key() == adjacency.key()
            ]
            assert counterpart and counterpart[0].coverage == 2 * adjacency.coverage


def test_coverage_threshold_filters_rare_kplus1mers():
    rare = "CCATGGTACTCA"
    reads = reads_from_strings(["GCTAAAGACA"] * 3 + [rare])
    unfiltered, _ = _build(reads, k=5, threshold=0)
    filtered, _ = _build(reads, k=5, threshold=1)
    # The rare read appears once, so every one of its (k+1)-mers is
    # below the threshold and disappears from the graph.
    assert filtered.filtered_kplus1mers > 0
    assert filtered.graph.kmer_count() < unfiltered.graph.kmer_count()
    assert filtered.surviving_kplus1mers == 5  # only the triplicated read survives


def test_branching_reads_create_ambiguous_vertex():
    # Two reads share a prefix then diverge: the last shared k-mer branches.
    reads = reads_from_strings(["AACCGGTTA", "AACCGGTCA"])
    result, _ = _build(reads, k=5)
    assert len(result.graph.ambiguous_vertices()) >= 1


def test_reads_with_n_are_split():
    reads = reads_from_strings(["GCTAANAGACA"])
    result, _ = _build(reads, k=5)
    # Each N-free fragment is shorter than in the unsplit read, so fewer
    # (k+1)-mers are produced than for the same read without N.
    unsplit, _ = _build(reads_from_strings(["GCTAAAGACA"]), k=5)
    assert result.distinct_kplus1mers < unsplit.distinct_kplus1mers


def test_construction_metrics_recorded():
    reads = reads_from_strings(["GCTAAAGACA"] * 5)
    result, chain = _build(reads, k=5)
    names = [job.job_name for job in chain.metrics().jobs]
    assert names == [
        "dbg-construction/phase1-count-kplus1mers",
        "dbg-construction/phase2-build-vertices",
    ]
    assert chain.metrics().jobs[0].loading_ops > 0


def test_construction_deterministic_across_worker_counts(clean_dataset):
    _genome, reads = clean_dataset
    few, _ = _build(reads[:200], k=15, workers=2)
    many, _ = _build(reads[:200], k=15, workers=8)
    assert set(few.graph.kmers) == set(many.graph.kmers)
    assert few.graph.edge_count() == many.graph.edge_count()


def test_graph_covers_genome_kmers(clean_dataset):
    genome, reads = clean_dataset
    result, _ = _build(reads, k=15, workers=4)
    # With 15x coverage and no errors, nearly every genomic k-mer appears.
    assert result.graph.kmer_count() >= 0.95 * (len(genome) - 15 + 1) * 0.9
    result.graph.validate()
