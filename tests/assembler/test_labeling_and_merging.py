"""Tests for operations ② (contig labeling) and ③ (contig merging)."""

from __future__ import annotations

import pytest

from repro.assembler import AssemblyConfig, build_dbg, label_contigs, merge_contigs
from repro.assembler.chain import build_chain_graph
from repro.assembler.config import LABELING_SIMPLIFIED_SV
from repro.dbg.ids import ContigIdAllocator
from repro.dbg.kmer_vertex import TYPE_AMBIGUOUS
from repro.dna.io_fastq import reads_from_strings
from repro.dna.sequence import reverse_complement
from repro.workflow import StageExecutor


def _assemble_first_round(reads, k=5, threshold=0, workers=2, method="list_ranking", tip=0):
    config = AssemblyConfig(
        k=k,
        coverage_threshold=threshold,
        tip_length_threshold=tip,
        labeling_method=method,
        num_workers=workers,
    )
    chain = StageExecutor(num_workers=workers)
    graph = build_dbg(reads, config, chain).graph
    labeling = label_contigs(graph, config, chain, include_contigs=False)
    merging = merge_contigs(graph, labeling, config, chain, ContigIdAllocator())
    return graph, labeling, merging, config, chain


def _matches_genome(contig, genome):
    return contig in genome or reverse_complement(contig) in genome


# ----------------------------------------------------------------------
# chain graph
# ----------------------------------------------------------------------
def test_chain_graph_excludes_ambiguous_vertices():
    reads = reads_from_strings(["AACCGGTTA", "AACCGGTCA"])
    config = AssemblyConfig(k=5, coverage_threshold=0, num_workers=2)
    job_chain = StageExecutor(num_workers=2)
    graph = build_dbg(reads, config, job_chain).graph
    chain = build_chain_graph(graph)
    ambiguous = set(graph.ambiguous_vertices())
    assert ambiguous
    assert not (set(chain.nodes) & ambiguous)
    # Chain nodes bordering an ambiguous vertex know it as a boundary.
    boundary_kmers = {
        link.boundary_kmer
        for node in chain.nodes.values()
        for link in node.links.values()
        if link is not None and link.is_boundary and link.boundary_kmer is not None
    }
    assert boundary_kmers <= ambiguous


def test_chain_pair_view_has_two_slots_per_node():
    reads = reads_from_strings(["GCTAAAGACA"])
    config = AssemblyConfig(k=5, coverage_threshold=0, num_workers=2)
    job_chain = StageExecutor(num_workers=2)
    graph = build_dbg(reads, config, job_chain).graph
    pairs = build_chain_graph(graph).pair_view()
    assert all(len(pair) == 2 for pair in pairs.values())


# ----------------------------------------------------------------------
# labeling
# ----------------------------------------------------------------------
def test_single_path_gets_single_label():
    reads = reads_from_strings(["GCTAAAGACA"])
    _graph, labeling, _merging, _config, _chain = _assemble_first_round(reads)
    assert len(set(labeling.labels.values())) == 1


def test_labels_partition_paths_at_ambiguous_vertices():
    reads = reads_from_strings(["AACCGGTTACG", "AACCGGTCACG"])
    graph, labeling, _merging, _config, _chain = _assemble_first_round(reads)
    # Every unambiguous vertex is labelled; ambiguous ones are not.
    labelled = set(labeling.labels)
    assert labelled == set(graph.kmers) - set(graph.ambiguous_vertices()) or labelled
    # Adjacent unambiguous vertices share a label.
    chain = labeling.chain
    for node_id, node in chain.nodes.items():
        for neighbor_id in node.neighbor_ids():
            assert labeling.labels[node_id] == labeling.labels[neighbor_id]


def test_lr_and_sv_produce_identical_groupings(noisy_dataset):
    _genome, reads = noisy_dataset
    subset = reads[: len(reads) // 2]
    _g1, lr, _m1, _c1, _ch1 = _assemble_first_round(subset, k=15, threshold=1, method="list_ranking")
    _g2, sv, _m2, _c2, _ch2 = _assemble_first_round(subset, k=15, threshold=1, method=LABELING_SIMPLIFIED_SV)

    def group_sets(labeling):
        groups = {}
        for node, label in labeling.labels.items():
            groups.setdefault(label, set()).add(node)
        return {frozenset(members) for members in groups.values()}

    assert group_sets(lr) == group_sets(sv)


def test_lr_uses_fewer_supersteps_and_messages_than_sv(noisy_dataset):
    """The Table II comparison at small scale: LR beats simplified S-V."""
    _genome, reads = noisy_dataset
    subset = reads[: len(reads) // 2]
    _g1, lr, _m1, _c1, _ch1 = _assemble_first_round(subset, k=15, threshold=1, method="list_ranking")
    _g2, sv, _m2, _c2, _ch2 = _assemble_first_round(subset, k=15, threshold=1, method=LABELING_SIMPLIFIED_SV)
    assert lr.num_supersteps < sv.num_supersteps
    assert lr.num_messages < sv.num_messages


def test_cycle_fallback_used_for_circular_chain():
    # A circular sequence: every k-mer is ⟨1-1⟩, so bidirectional list
    # ranking alone cannot finish and the S-V fallback must label it.
    cycle = "TCGCCTGATACGAGTCGGTTATCTTCGGAT"
    read = cycle + cycle[:5]
    _graph, labeling, merging, _config, _chain = _assemble_first_round(
        reads_from_strings([read]), k=5
    )
    assert labeling.used_cycle_fallback
    assert len(set(labeling.labels.values())) == 1
    assert merging.cycles_merged == 1


def test_labeling_metrics_include_end_recognition_job():
    reads = reads_from_strings(["GCTAAAGACA"])
    _graph, labeling, _merging, _config, _chain = _assemble_first_round(reads)
    names = [job.job_name for job in labeling.metrics]
    assert any("end-recognition" in name for name in names)
    assert labeling.num_supersteps >= 2


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def test_single_read_merges_into_one_contig_matching_sequence():
    sequence = "CAGCACGAAACTTGTTGG"
    graph, _labeling, merging, _config, _chain = _assemble_first_round(
        reads_from_strings([sequence]), k=5
    )
    assert len(merging.contigs_created) == 1
    contig = next(iter(graph.contigs.values()))
    assert contig.sequence == sequence or contig.sequence == reverse_complement(sequence)
    assert contig.length == len(sequence)


def test_merging_moves_all_unambiguous_kmers_out_of_graph():
    reads = reads_from_strings(["AACCGGTTACG", "AACCGGTCACG"])
    graph, _labeling, _merging, _config, _chain = _assemble_first_round(reads)
    # After merging, only ambiguous k-mers remain as k-mer vertices.
    assert all(
        vertex.vertex_type() == TYPE_AMBIGUOUS or vertex.adjacencies
        for vertex in graph.kmers.values()
    )
    assert set(graph.kmers) == set(graph.ambiguous_vertices()) | {
        kmer
        for kmer in graph.kmers
        if graph.kmers[kmer].vertex_type() != TYPE_AMBIGUOUS
    }


def test_merged_contig_ends_reference_ambiguous_kmers():
    reads = reads_from_strings(["AACCGGTTACG", "AACCGGTCACG"])
    graph, _labeling, _merging, _config, _chain = _assemble_first_round(reads)
    graph.validate()
    ambiguous = set(graph.ambiguous_vertices())
    for contig in graph.contigs.values():
        for end in (contig.in_end, contig.out_end):
            if not end.is_dead_end():
                assert end.neighbor_id in ambiguous


def test_ambiguous_kmers_gain_via_contig_adjacencies():
    reads = reads_from_strings(["AACCGGTTACG", "AACCGGTCACG"])
    graph, _labeling, _merging, _config, _chain = _assemble_first_round(reads)
    via_contig_links = [
        adjacency.via_contig
        for kmer in graph.ambiguous_vertices()
        for adjacency in graph.kmers[kmer].adjacencies
        if adjacency.via_contig is not None
    ]
    assert via_contig_links
    assert all(link.contig_id in graph.contigs for link in via_contig_links)


def test_merge_time_tip_drop():
    # Main path plus a short erroneous branch: with a tip threshold the
    # short dangling branch is dropped during merging.
    main = "AACCGGTTACGATCA"
    branch = "AACCGGTA"  # diverges after "AACCGGT"
    reads = reads_from_strings([main, main, branch])
    _graph_no_drop, _lab1, merge_no_drop, _cfg1, _ch1 = _assemble_first_round(reads, k=5, tip=0)
    _graph_drop, _lab2, merge_drop, _cfg2, _ch2 = _assemble_first_round(reads, k=5, tip=10)
    assert merge_no_drop.tips_dropped == 0
    assert merge_drop.tips_dropped >= 1
    assert len(merge_drop.contigs_created) < len(merge_no_drop.contigs_created)


def test_contig_coverage_is_minimum_edge_coverage():
    sequence = "CAGCACGAAACTTGTTGG"
    reads = reads_from_strings([sequence, sequence, sequence[:10]])
    graph, _labeling, _merging, _config, _chain = _assemble_first_round(reads, k=5)
    contig = next(iter(graph.contigs.values()))
    # The suffix of the sequence is covered by only two reads, the prefix
    # by three: the contig records the minimum.
    assert contig.coverage == 2


def test_merging_metrics_recorded():
    reads = reads_from_strings(["GCTAAAGACA"])
    _graph, _labeling, _merging, _config, chain = _assemble_first_round(reads)
    assert any("contig-merging" in job.job_name for job in chain.metrics().jobs)
