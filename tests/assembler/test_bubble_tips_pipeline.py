"""Tests for operations ④ (bubble filtering), ⑤ (tip removing) and the pipeline."""

from __future__ import annotations

import pytest

from repro.assembler import (
    AssemblyConfig,
    PPAAssembler,
    assemble_reads,
    build_dbg,
    filter_bubbles,
    label_contigs,
    merge_contigs,
    remove_tips,
)
from repro.dbg.ids import ContigIdAllocator
from repro.dna.io_fastq import reads_from_strings
from repro.dna.sequence import reverse_complement
from repro.dna.simulator import simulate_dataset
from repro.workflow import StageExecutor


def _prepare_merged_graph(reads, k=5, threshold=0, tip=0, workers=2):
    config = AssemblyConfig(
        k=k,
        coverage_threshold=threshold,
        tip_length_threshold=tip,
        num_workers=workers,
    )
    chain = StageExecutor(num_workers=workers)
    graph = build_dbg(reads, config, chain).graph
    labeling = label_contigs(graph, config, chain)
    merge_contigs(graph, labeling, config, chain, ContigIdAllocator())
    return graph, config, chain


# ----------------------------------------------------------------------
# bubble filtering
# ----------------------------------------------------------------------
def _bubble_reads():
    """A well-covered main path plus a rare single-substitution variant.

    The sequences were chosen so that, at k=5, the variant path and the
    main path form two contigs sharing both ambiguous endpoints — the
    bubble structure of Figure 5.
    """
    main = "AAGCCCAATAAACCACTCTGACTGGCCGAA"
    variant = main[:16] + "A" + main[17:]
    return reads_from_strings([main] * 6 + [variant] * 2)


def test_bubble_detected_and_low_coverage_side_pruned():
    graph, config, chain = _prepare_merged_graph(_bubble_reads(), k=5)
    contigs_before = graph.contig_count()
    result = filter_bubbles(graph, config, chain)
    assert result.bubbles_examined >= 1
    assert result.num_pruned >= 1
    assert graph.contig_count() == contigs_before - result.num_pruned
    # The surviving alternative is the high-coverage one.
    assert all(contig.coverage >= 2 for contig in graph.contigs.values())


def test_bubble_filtering_respects_edit_distance_threshold():
    graph, config, chain = _prepare_merged_graph(_bubble_reads(), k=5)
    strict = AssemblyConfig(
        k=config.k,
        coverage_threshold=config.coverage_threshold,
        tip_length_threshold=config.tip_length_threshold,
        bubble_edit_distance=0,
        num_workers=config.num_workers,
    )
    result = filter_bubbles(graph, strict, chain)
    assert result.num_pruned == 0


def test_bubble_filtering_noop_without_bubbles():
    reads = reads_from_strings(["CAGCACGAAACTTGTTGG"] * 3)
    graph, config, chain = _prepare_merged_graph(reads, k=5)
    result = filter_bubbles(graph, config, chain)
    assert result.num_pruned == 0


def test_bubble_filtering_records_metrics():
    graph, config, chain = _prepare_merged_graph(_bubble_reads(), k=5)
    before = len(chain.metrics().jobs)
    filter_bubbles(graph, config, chain)
    assert len(chain.metrics().jobs) == before + 1
    assert "bubble" in chain.metrics().jobs[-1].job_name


# ----------------------------------------------------------------------
# tip removing
# ----------------------------------------------------------------------
def _tip_reads():
    """A main path plus a short erroneous dead-end branch."""
    main = "CAGCACGAAACTTGTTGGCATCCGTAGGAT"
    branch = main[:10] + "TCC"  # diverges and dead-ends quickly
    return reads_from_strings([main] * 5 + [branch] * 2)


def test_tip_removal_deletes_short_dangling_branch():
    # Merge with tip threshold 0 so the branch survives merging and the
    # dedicated operation has something to remove.
    graph, config, chain = _prepare_merged_graph(_tip_reads(), k=5, tip=0)
    tip_config = AssemblyConfig(
        k=config.k,
        coverage_threshold=config.coverage_threshold,
        tip_length_threshold=20,
        num_workers=config.num_workers,
    )
    filter_bubbles(graph, tip_config, chain)
    before_kmers = graph.kmer_count()
    result = remove_tips(graph, tip_config, chain)
    assert result.phases >= 1
    # Tip removal either deletes something here or the branch was already
    # fully represented as a dangling contig handled at merge time; the
    # operation must leave the graph structurally valid either way.
    graph.validate()
    assert graph.kmer_count() <= before_kmers


def test_tip_removal_keeps_long_dangling_paths():
    graph, config, chain = _prepare_merged_graph(_tip_reads(), k=5, tip=0)
    conservative = AssemblyConfig(
        k=config.k,
        coverage_threshold=config.coverage_threshold,
        tip_length_threshold=1,
        num_workers=config.num_workers,
    )
    total_before = graph.kmer_count() + graph.contig_count()
    result = remove_tips(graph, conservative, chain)
    assert result.tips_removed == 0
    assert graph.kmer_count() + graph.contig_count() == total_before


def test_tip_removal_metrics_recorded():
    graph, config, chain = _prepare_merged_graph(_tip_reads(), k=5, tip=0)
    before = len(chain.metrics().jobs)
    remove_tips(graph, config, chain)
    assert len(chain.metrics().jobs) >= before + 1
    assert any("tip-removing" in job.job_name for job in chain.metrics().jobs[before:])


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------
def test_pipeline_reconstructs_clean_genome(clean_dataset, small_config):
    genome, reads = clean_dataset
    result = PPAAssembler(small_config).assemble(reads)
    assert result.num_contigs() >= 1
    largest = result.contigs[0]
    assert largest in genome or reverse_complement(largest) in genome
    assert result.largest_contig() >= 0.9 * len(genome)


def test_pipeline_stage_reporting(clean_dataset, small_config):
    _genome, reads = clean_dataset
    result = PPAAssembler(small_config).assemble(reads)
    names = [stage.name for stage in result.stages]
    assert "dbg-construction" in names
    assert "contig-labeling/kmers" in names
    assert "contig-merging/first-round" in names
    assert any(name.startswith("error-correction") for name in names)
    assert result.stage("dbg-construction").detail["kmer_vertices"] > 0
    assert result.stage("missing-stage") is None


def test_pipeline_labeling_metrics_split_by_round(noisy_dataset, noisy_config):
    _genome, reads = noisy_dataset
    result = PPAAssembler(noisy_config).assemble(reads)
    kmers = result.labeling_summary("kmers")
    contigs = result.labeling_summary("contigs")
    assert kmers["supersteps"] > 0 and kmers["messages"] > 0
    assert contigs["supersteps"] > 0
    # Labeling contigs touches far fewer vertices than labeling k-mers
    # (the Table III vs Table II observation).
    assert contigs["messages"] < kmers["messages"]


def test_pipeline_second_round_grows_contigs(noisy_dataset, noisy_config):
    """The paper's observation that N50 improves after error correction."""
    _genome, reads = noisy_dataset
    single_round = PPAAssembler(noisy_config).assemble(reads)
    first_merge = single_round.stage("contig-merging/first-round").detail["contigs"]
    second_merge = single_round.stage("contig-merging/round-2").detail["contigs"]
    assert second_merge <= first_merge


def test_pipeline_estimated_seconds_positive(clean_dataset, small_config):
    _genome, reads = clean_dataset
    result = PPAAssembler(small_config).assemble(reads)
    assert result.estimated_seconds() > 0
    breakdown = result.estimated_breakdown()
    assert breakdown and all(seconds >= 0 for seconds in breakdown.values())


def test_pipeline_contig_queries_and_fasta(tmp_path, clean_dataset, small_config):
    _genome, reads = clean_dataset
    result = PPAAssembler(small_config).assemble(reads)
    assert result.total_length() == sum(len(contig) for contig in result.contigs)
    assert result.num_contigs(min_length=10**9) == 0
    output = tmp_path / "contigs.fasta"
    written = result.write_fasta(output)
    assert written == result.num_contigs()
    assert output.read_text().startswith(">contig_0")


def test_assemble_reads_convenience_wrapper(clean_dataset, small_config):
    _genome, reads = clean_dataset
    result = assemble_reads(reads, small_config)
    assert result.num_contigs() >= 1


def test_zero_error_correction_rounds(clean_dataset):
    _genome, reads = clean_dataset
    config = AssemblyConfig(
        k=15, coverage_threshold=0, tip_length_threshold=40, num_workers=2, error_correction_rounds=0
    )
    result = PPAAssembler(config).assemble(reads)
    names = [stage.name for stage in result.stages]
    assert not any(name.startswith("error-correction") for name in names)
    assert result.num_contigs() >= 1


def test_pipeline_deterministic_across_worker_counts(clean_dataset):
    _genome, reads = clean_dataset
    results = []
    for workers in (2, 6):
        config = AssemblyConfig(
            k=15, coverage_threshold=0, tip_length_threshold=40, num_workers=workers
        )
        results.append(sorted(PPAAssembler(config).assemble(reads).contigs))
    assert results[0] == results[1]
