"""Tests for k-mer extraction, FASTQ/FASTA IO, the read simulator and datasets."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.dna.datasets import DEFAULT_PROFILES, all_profiles, get_profile
from repro.dna.encoding import decode_kmer
from repro.dna.io_fastq import (
    FastaRecord,
    Read,
    parse_fasta,
    parse_fastq,
    reads_from_strings,
    write_fasta,
    write_fastq,
)
from repro.dna.kmer import (
    extract_canonical_kmer_ids,
    extract_kplus1mers,
    validate_k,
)
from repro.dna.sequence import canonical, reverse_complement
from repro.dna.simulator import (
    ReadSimulationConfig,
    ReadSimulator,
    generate_genome,
    simulate_dataset,
)
from repro.errors import FastqFormatError, InvalidKmerError

dna = st.text(alphabet="ACGT", min_size=6, max_size=60)


# ----------------------------------------------------------------------
# k-mer extraction
# ----------------------------------------------------------------------
def test_paper_example_3mers():
    """Figure 4: read "ATTG" with k=2 yields 3-mers ATT and TTG."""
    edges = list(extract_kplus1mers("ATTG", 2))
    assert len(edges) == 2
    prefixes = [decode_kmer(edge.prefix.kmer_id, 2) for edge in edges]
    suffixes = [decode_kmer(edge.suffix.kmer_id, 2) for edge in edges]
    # Vertices are canonical 2-mers.
    assert prefixes == [canonical("AT"), canonical("TT")]
    assert suffixes == [canonical("TT"), canonical("TG")]


def test_reads_shorter_than_k_plus_one_ignored():
    assert list(extract_kplus1mers("ACG", 3)) == []


def test_n_bases_split_reads():
    edges = list(extract_kplus1mers("ACGTNACGT", 3))
    # Each N-free fragment "ACGT" yields one 4-mer.
    assert len(edges) == 2


@given(dna)
def test_property_kplus1mer_count(sequence):
    k = 4
    expected = max(0, len(sequence) - k)
    assert len(list(extract_kplus1mers(sequence, k))) == expected


@given(dna)
def test_property_strand_symmetry(sequence):
    """A read and its reverse complement produce the same canonical edges."""
    k = 4
    forward = {
        frozenset(((edge.prefix.kmer_id), (edge.suffix.kmer_id)))
        for edge in extract_kplus1mers(sequence, k)
    }
    backward = {
        frozenset(((edge.prefix.kmer_id), (edge.suffix.kmer_id)))
        for edge in extract_kplus1mers(reverse_complement(sequence), k)
    }
    assert forward == backward


def test_extract_canonical_kmer_ids():
    ids = extract_canonical_kmer_ids("ACGTT", 3)
    assert len(ids) == 3
    assert all(decode_kmer(kmer_id, 3) == canonical(kmer) for kmer_id, kmer in zip(ids, ["ACG", "CGT", "GTT"]))


def test_validate_k_bounds():
    validate_k(1)
    validate_k(31)
    with pytest.raises(InvalidKmerError):
        validate_k(0)
    with pytest.raises(InvalidKmerError):
        validate_k(32)


# ----------------------------------------------------------------------
# FASTQ / FASTA
# ----------------------------------------------------------------------
def test_fastq_round_trip():
    reads = [Read("r1", "ACGT", "IIII"), Read("r2", "GGTTA", "ABCDE")]
    buffer = io.StringIO()
    assert write_fastq(reads, buffer) == 2
    buffer.seek(0)
    parsed = list(parse_fastq(buffer))
    assert parsed == reads


def test_fastq_default_quality():
    buffer = io.StringIO()
    write_fastq([Read("r", "ACGT")], buffer)
    buffer.seek(0)
    assert list(parse_fastq(buffer))[0].quality == "IIII"


def test_fastq_bad_header_raises():
    with pytest.raises(FastqFormatError):
        list(parse_fastq(io.StringIO("not-a-header\nACGT\n+\nIIII\n")))


def test_fastq_bad_separator_raises():
    with pytest.raises(FastqFormatError):
        list(parse_fastq(io.StringIO("@r\nACGT\nIIII\nIIII\n")))


def test_fastq_quality_length_mismatch_raises():
    with pytest.raises(FastqFormatError):
        list(parse_fastq(io.StringIO("@r\nACGT\n+\nII\n")))


def test_fastq_invalid_character_raises():
    with pytest.raises(FastqFormatError):
        list(parse_fastq(io.StringIO("@r\nACXT\n+\nIIII\n")))
    # but passes when validation is off
    buffer = io.StringIO("@r\nACXT\n+\nIIII\n")
    assert list(parse_fastq(buffer, validate=False))[0].sequence == "ACXT"


def test_fasta_round_trip_with_wrapping():
    records = [FastaRecord("chr1", "ACGT" * 50), FastaRecord("chr2", "GG")]
    buffer = io.StringIO()
    assert write_fasta(records, buffer, line_width=25) == 2
    buffer.seek(0)
    assert list(parse_fasta(buffer)) == records


def test_fasta_data_before_header_raises():
    with pytest.raises(FastqFormatError):
        list(parse_fasta(io.StringIO("ACGT\n>late\nACGT\n")))


def test_fasta_bad_line_width():
    with pytest.raises(ValueError):
        write_fasta([FastaRecord("x", "ACGT")], io.StringIO(), line_width=0)


def test_reads_from_strings():
    reads = reads_from_strings(["acgt", "GGG"], prefix="t")
    assert reads[0].name == "t-0" and reads[0].sequence == "ACGT"
    assert reads[1].sequence == "GGG"


def test_file_round_trip(tmp_path):
    path = tmp_path / "reads.fastq"
    reads = [Read("a", "ACGTACGT", "IIIIIIII")]
    write_fastq(reads, path)
    assert list(parse_fastq(path)) == reads


# ----------------------------------------------------------------------
# simulator
# ----------------------------------------------------------------------
def test_generate_genome_properties():
    genome = generate_genome(10_000, gc_content=0.41, seed=1)
    assert len(genome) == 10_000
    assert set(genome) <= set("ACGT")
    gc = sum(1 for base in genome if base in "GC") / len(genome)
    assert 0.35 < gc < 0.47


def test_generate_genome_deterministic():
    assert generate_genome(2_000, seed=5) == generate_genome(2_000, seed=5)
    assert generate_genome(2_000, seed=5) != generate_genome(2_000, seed=6)


def test_generate_genome_repeats_create_duplicates():
    no_repeats = generate_genome(20_000, repeat_fraction=0.0, seed=3)
    with_repeats = generate_genome(20_000, repeat_fraction=0.2, repeat_length=500, seed=3)

    def distinct_kmers(genome, k=31):
        return len({genome[i : i + k] for i in range(len(genome) - k + 1)})

    assert distinct_kmers(with_repeats) < distinct_kmers(no_repeats)


def test_generate_genome_validation():
    with pytest.raises(ValueError):
        generate_genome(0)
    with pytest.raises(ValueError):
        generate_genome(100, gc_content=1.5)
    with pytest.raises(ValueError):
        generate_genome(100, repeat_fraction=1.0)


def test_read_simulator_coverage_and_lengths():
    genome = generate_genome(5_000, seed=2)
    config = ReadSimulationConfig(read_length=100, coverage=12, error_rate=0.0, seed=3)
    reads = ReadSimulator(config).simulate(genome)
    assert len(reads) == ReadSimulator(config).number_of_reads(len(genome))
    assert all(len(read) == 100 for read in reads)
    total_bases = sum(len(read) for read in reads)
    assert total_bases == pytest.approx(12 * 5_000, rel=0.05)


def test_read_simulator_error_rate():
    genome = generate_genome(5_000, seed=4)
    config = ReadSimulationConfig(read_length=100, coverage=10, error_rate=0.05, both_strands=False, ambiguous_rate=0.0, seed=5)
    reads = ReadSimulator(config).simulate(genome)
    mismatches = 0
    total = 0
    for read in reads:
        start = int(read.name.split(":")[1])
        original = genome[start : start + 100]
        mismatches += sum(1 for a, b in zip(read.sequence, original) if a != b)
        total += len(original)
    assert 0.03 < mismatches / total < 0.07


def test_read_simulator_both_strands():
    genome = generate_genome(3_000, seed=6)
    config = ReadSimulationConfig(read_length=80, coverage=10, error_rate=0.0, seed=7)
    reads = ReadSimulator(config).simulate(genome)
    strands = {read.name.rsplit(":", 1)[-1] for read in reads}
    assert strands == {"+", "-"}


def test_read_simulator_rejects_short_genome():
    with pytest.raises(ValueError):
        ReadSimulator(ReadSimulationConfig(read_length=100)).simulate("ACGT")


def test_simulation_config_validation():
    with pytest.raises(ValueError):
        ReadSimulationConfig(read_length=0)
    with pytest.raises(ValueError):
        ReadSimulationConfig(coverage=0)
    with pytest.raises(ValueError):
        ReadSimulationConfig(error_rate=1.5)


def test_simulate_dataset_helper():
    genome, reads = simulate_dataset(2_000, read_length=50, coverage=5, seed=1)
    assert len(genome) == 2_000
    assert len(reads) == 200


# ----------------------------------------------------------------------
# dataset profiles
# ----------------------------------------------------------------------
def test_all_four_paper_profiles_exist():
    assert set(DEFAULT_PROFILES) == {"hc2", "hcx", "hc14", "bi"}
    profiles = all_profiles()
    assert [profile.name for profile in profiles] == ["hc2", "hcx", "hc14", "bi"]


def test_profile_relative_sizes_match_table1_order():
    profiles = {name: get_profile(name) for name in ("hc2", "hcx", "hc14", "bi")}
    assert (
        profiles["hc2"].genome_length
        < profiles["hcx"].genome_length
        < profiles["hc14"].genome_length
        < profiles["bi"].genome_length
    )


def test_profile_reference_availability_matches_paper():
    assert get_profile("hc2").has_reference
    assert get_profile("hcx").has_reference
    assert not get_profile("hc14").has_reference
    assert not get_profile("bi").has_reference


def test_profile_generation_respects_reference_flag():
    small = get_profile("hc14", scale=0.05)
    reference, reads = small.generate()
    assert reference is None
    assert reads
    reference2, _ = small.generate_with_reference()
    assert reference2 is not None


def test_profile_scaling():
    base = get_profile("hc2")
    scaled = get_profile("hc2", scale=0.5)
    assert scaled.genome_length == pytest.approx(base.genome_length * 0.5, rel=0.01)
    with pytest.raises(ValueError):
        get_profile("hc2", scale=-1)
    with pytest.raises(KeyError):
        get_profile("unknown")


def test_profile_table1_row():
    row = get_profile("hc2").table1_row()
    assert row["paper_reads_millions"] == 4.81
    assert row["paper_reference_length"] == 48_170_570
    assert row["scaled_reads"] > 0
