"""Tests for string-level sequence operations and the alphabet."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dna.alphabet import (
    complement_base,
    complement_bits,
    decode_base,
    encode_base,
    is_valid_sequence,
    validate_sequence,
)
from repro.dna.sequence import (
    canonical,
    edit_distance,
    gc_content,
    hamming_distance,
    kmerize,
    overlap_concatenate,
    reverse_complement,
    split_on_ambiguous,
)
from repro.errors import InvalidNucleotideError

dna = st.text(alphabet="ACGT", min_size=0, max_size=80)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=80)


# ----------------------------------------------------------------------
# alphabet
# ----------------------------------------------------------------------
def test_complement_pairs():
    assert complement_base("A") == "T"
    assert complement_base("T") == "A"
    assert complement_base("G") == "C"
    assert complement_base("C") == "G"
    assert complement_base("N") == "N"


def test_complement_rejects_invalid():
    with pytest.raises(InvalidNucleotideError):
        complement_base("X")


def test_bit_codes_match_paper():
    assert encode_base("A") == 0b00
    assert encode_base("C") == 0b01
    assert encode_base("G") == 0b10
    assert encode_base("T") == 0b11


def test_complement_bits_is_bitwise_not():
    for base in "ACGT":
        assert decode_base(complement_bits(encode_base(base))) == complement_base(base)


def test_sequence_validation():
    assert is_valid_sequence("ACGTN")
    assert not is_valid_sequence("ACGTN", allow_ambiguous=False)
    assert not is_valid_sequence("ACGU")
    validate_sequence("ACGT")
    with pytest.raises(InvalidNucleotideError) as excinfo:
        validate_sequence("ACXT")
    assert excinfo.value.position == 2


# ----------------------------------------------------------------------
# reverse complement / canonical
# ----------------------------------------------------------------------
def test_reverse_complement_example_from_paper():
    """Section III: rc of strand 1 "ATTGCAAGTC" is "GACTTGCAAT"."""
    assert reverse_complement("ATTGCAAGTC") == "GACTTGCAAT"


@given(dna)
def test_property_rc_involution(sequence):
    assert reverse_complement(reverse_complement(sequence)) == sequence


@given(dna_nonempty)
def test_property_canonical_is_min(sequence):
    result = canonical(sequence)
    assert result == min(sequence, reverse_complement(sequence))
    assert canonical(reverse_complement(sequence)) == result


# ----------------------------------------------------------------------
# misc sequence ops
# ----------------------------------------------------------------------
def test_gc_content():
    assert gc_content("GGCC") == 1.0
    assert gc_content("AATT") == 0.0
    assert gc_content("ACGT") == 0.5
    assert gc_content("") == 0.0
    assert gc_content("NN") == 0.0
    assert gc_content("GCNN") == 1.0


def test_split_on_ambiguous():
    assert split_on_ambiguous("ACNNGT") == ["AC", "GT"]
    assert split_on_ambiguous("NNN") == []
    assert split_on_ambiguous("ACGT") == ["ACGT"]


def test_kmerize():
    assert list(kmerize("ACGTT", 3)) == ["ACG", "CGT", "GTT"]
    assert list(kmerize("AC", 3)) == []
    with pytest.raises(ValueError):
        list(kmerize("ACGT", 0))


def test_overlap_concatenate():
    assert overlap_concatenate("ACGT", "GTTA", 2) == "ACGTTA"
    assert overlap_concatenate("ACGT", "TTTT", 0) == "ACGTTTTT"
    with pytest.raises(ValueError):
        overlap_concatenate("ACGT", "CCCC", 2)
    with pytest.raises(ValueError):
        overlap_concatenate("ACGT", "GT", 3)
    with pytest.raises(ValueError):
        overlap_concatenate("ACGT", "GT", -1)


def test_hamming_distance():
    assert hamming_distance("ACGT", "ACGT") == 0
    assert hamming_distance("ACGT", "ACCT") == 1
    with pytest.raises(ValueError):
        hamming_distance("ACGT", "ACG")


# ----------------------------------------------------------------------
# edit distance
# ----------------------------------------------------------------------
def test_edit_distance_basic():
    assert edit_distance("ACGT", "ACGT") == 0
    assert edit_distance("ACGT", "ACCT") == 1
    assert edit_distance("ACGT", "ACG") == 1
    assert edit_distance("", "ACG") == 3


def test_edit_distance_upper_bound_short_circuits():
    assert edit_distance("A" * 50, "T" * 50, upper_bound=5) == 6
    assert edit_distance("ACGT", "ACGTTTTT", upper_bound=2) == 3


@given(dna, dna)
def test_property_edit_distance_symmetric(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(dna_nonempty)
def test_property_edit_distance_single_substitution(sequence):
    mutated = list(sequence)
    mutated[0] = {"A": "C", "C": "G", "G": "T", "T": "A"}[mutated[0]]
    assert edit_distance(sequence, "".join(mutated)) == 1
