"""Tests for 2-bit k-mer packing and the Figure 7 ID formats."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dna.encoding import (
    FLIP_BIT,
    MAX_K,
    NULL_ID,
    canonical_encoded,
    decode_kmer,
    decode_varint,
    decode_varint_list,
    encode_kmer,
    encode_varint,
    encode_varint_list,
    flip_id,
    is_contig_id,
    is_flipped,
    is_kmer_id,
    is_null,
    iter_encoded_kmers,
    make_contig_id,
    reverse_complement_encoded,
    split_contig_id,
    unflip_id,
)
from repro.dna.sequence import canonical, reverse_complement
from repro.errors import InvalidKmerError

kmer_strings = st.text(alphabet="ACGT", min_size=1, max_size=MAX_K)


def test_paper_example_attgc():
    """Figure 7(a): "ATTGC" packs into ...00 0011111001."""
    assert encode_kmer("ATTGC") == 0b0011111001


def test_encode_decode_round_trip_examples():
    for kmer in ("A", "C", "G", "T", "ACGT", "TTTTTTTTTT", "ACGTACGTACGTACGTACGTACGTACGTACG"):
        assert decode_kmer(encode_kmer(kmer), len(kmer)) == kmer


@given(kmer_strings)
def test_property_encode_decode_round_trip(kmer):
    assert decode_kmer(encode_kmer(kmer), len(kmer)) == kmer


@given(kmer_strings)
def test_property_encoded_rc_matches_string_rc(kmer):
    encoded = encode_kmer(kmer)
    assert decode_kmer(reverse_complement_encoded(encoded, len(kmer)), len(kmer)) == reverse_complement(kmer)


@given(kmer_strings)
def test_property_rc_is_involution(kmer):
    encoded = encode_kmer(kmer)
    twice = reverse_complement_encoded(
        reverse_complement_encoded(encoded, len(kmer)), len(kmer)
    )
    assert twice == encoded


@given(kmer_strings)
def test_property_canonical_matches_string_canonical(kmer):
    encoded = encode_kmer(kmer)
    canonical_id, was_rc = canonical_encoded(encoded, len(kmer))
    assert decode_kmer(canonical_id, len(kmer)) == canonical(kmer)
    assert was_rc == (canonical(kmer) != kmer)


@given(kmer_strings)
def test_property_canonical_ids_never_use_special_bits(kmer):
    canonical_id, _ = canonical_encoded(encode_kmer(kmer), len(kmer))
    assert is_kmer_id(canonical_id)


def test_encode_rejects_bad_input():
    with pytest.raises(InvalidKmerError):
        encode_kmer("")
    with pytest.raises(InvalidKmerError):
        encode_kmer("A" * (MAX_K + 1))
    with pytest.raises(InvalidKmerError):
        encode_kmer("ACGN")


def test_decode_rejects_special_ids():
    with pytest.raises(InvalidKmerError):
        decode_kmer(NULL_ID, 5)
    with pytest.raises(InvalidKmerError):
        decode_kmer(encode_kmer("ACGTA"), 0)


def test_iter_encoded_kmers_matches_slicing():
    sequence = "ACGTTGCAAC"
    k = 4
    expected = [encode_kmer(sequence[i : i + k]) for i in range(len(sequence) - k + 1)]
    assert list(iter_encoded_kmers(sequence, k)) == expected


def test_iter_encoded_kmers_short_sequence_empty():
    assert list(iter_encoded_kmers("ACG", 5)) == []


# ----------------------------------------------------------------------
# special IDs
# ----------------------------------------------------------------------
def test_null_id_classification():
    assert is_null(NULL_ID)
    assert not is_kmer_id(NULL_ID)
    assert not is_contig_id(NULL_ID)


def test_contig_id_round_trip():
    contig_id = make_contig_id(worker_id=3, contig_order=17)
    assert is_contig_id(contig_id)
    assert not is_kmer_id(contig_id)
    assert split_contig_id(contig_id) == (3, 17)


def test_contig_id_avoids_null_collision():
    with pytest.raises(ValueError):
        make_contig_id(0, 0)
    assert make_contig_id(0, 1) != NULL_ID


def test_contig_id_range_checks():
    with pytest.raises(ValueError):
        make_contig_id(-1, 1)
    with pytest.raises(ValueError):
        make_contig_id(1 << 31, 1)
    with pytest.raises(ValueError):
        make_contig_id(1, 1 << 32)


def test_flip_id_round_trip():
    kmer_id = encode_kmer("ACGTAC")
    flipped = flip_id(kmer_id)
    assert is_flipped(flipped)
    assert not is_flipped(kmer_id)
    assert unflip_id(flipped) == kmer_id
    assert flipped & FLIP_BIT


def test_kmer_ids_distinct_from_contig_ids():
    kmer_id = encode_kmer("A" * 31)
    contig_id = make_contig_id(0, 1)
    assert is_kmer_id(kmer_id) and not is_kmer_id(contig_id)
    assert is_contig_id(contig_id) and not is_contig_id(kmer_id)


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**40))
def test_property_varint_round_trip(value):
    encoded = encode_varint(value)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)


def test_small_varints_are_one_byte():
    for value in range(128):
        assert len(encode_varint(value)) == 1


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        encode_varint(-1)


def test_varint_truncated_raises():
    encoded = encode_varint(300)
    with pytest.raises(ValueError):
        decode_varint(encoded[:1], 0) if len(encoded) > 1 else (_ for _ in ()).throw(ValueError())


def test_varint_list_round_trip():
    values = [0, 1, 127, 128, 300, 2**20]
    data = encode_varint_list(values)
    assert decode_varint_list(data, len(values)) == values


def test_varint_list_trailing_bytes_detected():
    data = encode_varint_list([1, 2]) + b"\x00"
    with pytest.raises(ValueError):
        decode_varint_list(data, 2)
