"""Property-style parity tests: NumPy kernels vs the scalar oracle.

The vectorized module must be bit-identical to the scalar encoders on
arbitrary reads — round-trips, canonical forms, polarity labels and
N-splitting — and the vectorized construction/columnar-message paths
must leave contigs, aggregate histories and metrics unchanged.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.assembler import AssemblyConfig
from repro.assembler.construction import build_dbg
from repro.assembler.pipeline import assemble_reads
from repro.dna import vectorized
from repro.dna.encoding import (
    canonical_encoded,
    decode_kmer,
    iter_encoded_kmers,
    reverse_complement_encoded,
)
from repro.dna.kmer import extract_kplus1mers
from repro.dna.sequence import split_on_ambiguous
from repro.dna.simulator import simulate_dataset
from repro.workflow import StageExecutor


def random_reads(seed: int, count: int = 60, with_ns: bool = True):
    """Random reads of mixed lengths, optionally peppered with Ns."""
    rng = random.Random(seed)
    alphabet = "ACGT" + ("N" if with_ns else "")
    reads = []
    for _ in range(count):
        length = rng.randint(0, 120)
        reads.append("".join(rng.choice(alphabet) for _ in range(length)))
    # Edge cases the generators might miss.
    reads += ["", "ACGT", "A" * 64]
    if with_ns:
        reads += ["N", "N" * 40, "ACGTN" * 20]
    return reads


def scalar_window_ids(sequences, window):
    """The scalar pipeline's observed window IDs and per-read counts."""
    ids, counts = [], []
    for sequence in sequences:
        emitted = 0
        for fragment in split_on_ambiguous(sequence):
            if len(fragment) < window:
                continue
            for encoded in iter_encoded_kmers(fragment, window):
                ids.append(encoded)
                emitted += 1
        counts.append(emitted)
    return ids, counts


@pytest.mark.parametrize("k", [1, 5, 21, 31])
def test_window_extraction_matches_scalar(k):
    sequences = random_reads(seed=k)
    ids, counts = vectorized.extract_window_ids(sequences, k)
    want_ids, want_counts = scalar_window_ids(sequences, k)
    assert ids.tolist() == want_ids
    assert counts.tolist() == want_counts
    assert int(counts.sum()) == len(want_ids)


@pytest.mark.parametrize("k", [1, 2, 7, 16, 31, 32])
def test_reverse_complement_matches_scalar(k):
    rng = random.Random(100 + k)
    ids = np.array([rng.randrange(1 << (2 * k)) for _ in range(500)], dtype=np.uint64)
    got = vectorized.reverse_complement_ids(ids, k)
    want = [reverse_complement_encoded(int(encoded), k) for encoded in ids.tolist()]
    assert got.tolist() == want
    # rc is an involution
    assert vectorized.reverse_complement_ids(got, k).tolist() == ids.tolist()


@pytest.mark.parametrize("k", [3, 15, 21, 31])
def test_canonical_and_polarity_match_scalar(k):
    rng = random.Random(200 + k)
    ids = np.array([rng.randrange(1 << (2 * k)) for _ in range(500)], dtype=np.uint64)
    canonical, was_rc = vectorized.canonical_ids(ids, k)
    for observed, got_id, got_rc in zip(ids.tolist(), canonical.tolist(), was_rc.tolist()):
        want_id, want_rc = canonical_encoded(observed, k)
        assert got_id == want_id
        assert got_rc == want_rc


@pytest.mark.parametrize("k", [5, 21])
def test_round_trip_through_decode(k):
    sequences = [s for s in random_reads(seed=300 + k, with_ns=False) if len(s) >= k]
    ids, counts = vectorized.extract_window_ids(sequences, k)
    decoded = iter(ids.tolist())
    for sequence, count in zip(sequences, counts.tolist()):
        assert count == len(sequence) - k + 1
        for start in range(count):
            assert decode_kmer(next(decoded), k) == sequence[start : start + k]


@pytest.mark.parametrize("k", [5, 15, 21])
def test_edge_fields_match_kplus1mer_extraction(k):
    sequences = random_reads(seed=400 + k)
    edges, _counts = vectorized.extract_window_ids(sequences, k + 1)
    fields = vectorized.edge_vertex_fields(edges, k)
    scalar = [
        kp1 for sequence in sequences for kp1 in extract_kplus1mers(sequence, k)
    ]
    assert edges.size == len(scalar)
    for index, kp1 in enumerate(scalar):
        assert int(edges[index]) == kp1.edge_id
        assert int(fields["prefix_id"][index]) == kp1.prefix.kmer_id
        assert int(fields["suffix_id"][index]) == kp1.suffix.kmer_id
        polarity = ("H" if fields["prefix_rc"][index] else "L") + (
            "H" if fields["suffix_rc"][index] else "L"
        )
        assert polarity == kp1.polarity()


def test_invalid_base_raises_like_scalar():
    from repro.errors import InvalidKmerError

    with pytest.raises(InvalidKmerError):
        vectorized.extract_window_ids(["ACGTXACGT"], 3)


def test_empty_batch():
    ids, counts = vectorized.extract_window_ids([], 5)
    assert ids.size == 0
    assert counts.size == 0


# ----------------------------------------------------------------------
# end-to-end parity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def simulated_reads():
    _genome, reads = simulate_dataset(genome_length=5000, seed=11)
    return reads


def test_construction_parity(simulated_reads):
    config_fast = AssemblyConfig(k=15, use_vectorized=True)
    config_reference = AssemblyConfig(k=15, use_vectorized=False)
    chain_fast = StageExecutor(num_workers=4, columnar_messages=True)
    chain_reference = StageExecutor(num_workers=4, columnar_messages=False)

    fast = build_dbg(simulated_reads, config_fast, chain_fast)
    reference = build_dbg(simulated_reads, config_reference, chain_reference)

    assert fast.total_kplus1mers == reference.total_kplus1mers
    assert fast.distinct_kplus1mers == reference.distinct_kplus1mers
    assert fast.surviving_kplus1mers == reference.surviving_kplus1mers
    assert fast.filtered_kplus1mers == reference.filtered_kplus1mers
    # Same vertices, same insertion order, same adjacency data.
    assert list(fast.graph.kmers) == list(reference.graph.kmers)
    assert fast.graph.kmers == reference.graph.kmers
    # Shuffle volumes and per-worker loads feed Figure 12: bit-identical.
    assert chain_fast.pipeline_metrics == chain_reference.pipeline_metrics


@pytest.mark.parametrize("backend", ["serial", "multiprocess"])
def test_end_to_end_contig_parity(simulated_reads, backend):
    fast = assemble_reads(
        simulated_reads,
        AssemblyConfig(k=15, backend=backend, use_vectorized=True),
    )
    reference = assemble_reads(
        simulated_reads,
        AssemblyConfig(k=15, backend=backend, use_vectorized=False),
    )
    assert fast.contigs == reference.contigs
    assert fast.metrics == reference.metrics
    assert [(stage.name, stage.detail) for stage in fast.stages] == [
        (stage.name, stage.detail) for stage in reference.stages
    ]
