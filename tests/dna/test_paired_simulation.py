"""Paired-end simulation and paired-FASTQ IO."""

from __future__ import annotations

import statistics

import pytest

from repro.dna import (
    PairedReadSimulationConfig,
    PairedReadSimulator,
    generate_genome,
    get_profile,
    parse_paired_fastq,
    simulate_paired_dataset,
    write_paired_fastq,
)
from repro.dna.sequence import reverse_complement
from repro.errors import FastqFormatError


@pytest.fixture(scope="module")
def clean_pairs():
    """Error-free pairs whose names encode the true placement."""
    genome = generate_genome(8_000, repeat_fraction=0.0, seed=13)
    simulator = PairedReadSimulator(
        PairedReadSimulationConfig(
            read_length=100,
            coverage=30.0,
            insert_size_mean=500.0,
            insert_size_std=50.0,
            error_rate=0.0,
            ambiguous_rate=0.0,
            seed=14,
        )
    )
    return genome, simulator.simulate(genome)


def _placement(pair):
    """Decode (start, insert, strand) from the simulator's mate names."""
    base = pair.read1.name.rsplit("/", 1)[0]
    _prefix, start, insert, strand = base.rsplit(":", 3)
    return int(start), int(insert), strand


def test_pair_orientation_is_fr(clean_pairs):
    """Mate 1 reads the fragment 5' end forward, mate 2 the 3' end reversed."""
    genome, pairs = clean_pairs
    assert pairs
    for pair in pairs:
        start, insert, strand = _placement(pair)
        fragment = genome[start : start + insert]
        if strand == "-":
            fragment = reverse_complement(fragment)
        assert pair.read1.sequence == fragment[:100]
        assert pair.read2.sequence == reverse_complement(fragment[-100:])


def test_mates_point_towards_each_other(clean_pairs):
    """In genome coordinates the rc of one mate flanks the other (innie)."""
    genome, pairs = clean_pairs
    for pair in pairs[:200]:
        start, insert, strand = _placement(pair)
        left, right = genome[start : start + 100], genome[start + insert - 100 : start + insert]
        if strand == "+":
            assert pair.read1.sequence == left
            assert reverse_complement(pair.read2.sequence) == right
        else:
            assert reverse_complement(pair.read1.sequence) == right
            assert pair.read2.sequence == left


def test_insert_size_distribution(clean_pairs):
    _genome, pairs = clean_pairs
    inserts = [_placement(pair)[1] for pair in pairs]
    mean = statistics.mean(inserts)
    std = statistics.stdev(inserts)
    assert abs(mean - 500.0) < 25.0
    assert 25.0 < std < 75.0
    # The truncation floor: no insert may be shorter than both mates.
    assert min(inserts) >= 200


def test_pair_count_tracks_coverage(clean_pairs):
    genome, pairs = clean_pairs
    # coverage 30 over 8 kbp with 2 x 100 bp mates -> 1200 pairs.
    assert len(pairs) == round(30.0 * len(genome) / 200)


def test_paired_fastq_round_trip(tmp_path, clean_pairs):
    _genome, pairs = clean_pairs
    path1, path2 = tmp_path / "reads_1.fastq", tmp_path / "reads_2.fastq"
    written = write_paired_fastq(pairs, path1, path2)
    assert written == len(pairs)
    assert list(parse_paired_fastq(path1, path2)) == pairs


def test_paired_fastq_rejects_desynchronised_files(tmp_path, clean_pairs):
    _genome, pairs = clean_pairs
    path1, path2 = tmp_path / "reads_1.fastq", tmp_path / "reads_2.fastq"
    write_paired_fastq(pairs[:10], path1, path2)
    truncated = tmp_path / "short_2.fastq"
    with open(path2) as source, open(truncated, "w") as target:
        target.writelines(source.readlines()[:-4])
    with pytest.raises(FastqFormatError, match="out of sync"):
        list(parse_paired_fastq(path1, truncated))


def test_paired_fastq_rejects_mismatched_names(tmp_path, clean_pairs):
    _genome, pairs = clean_pairs
    path1, path2 = tmp_path / "reads_1.fastq", tmp_path / "reads_2.fastq"
    write_paired_fastq(pairs[:3], path1, path2)
    other_2 = tmp_path / "other_2.fastq"
    write_paired_fastq(pairs[3:6], tmp_path / "other_1.fastq", other_2)
    with pytest.raises(FastqFormatError, match="mate names disagree"):
        list(parse_paired_fastq(path1, other_2))


def test_config_rejects_too_small_insert():
    with pytest.raises(ValueError, match="insert_size_mean"):
        PairedReadSimulationConfig(read_length=100, insert_size_mean=150.0)


def test_simulate_paired_dataset_one_call():
    genome, pairs = simulate_paired_dataset(4_000, coverage=10, seed=2)
    assert len(genome) == 4_000
    assert pairs
    assert all(len(pair.read1) == 100 and len(pair.read2) == 100 for pair in pairs)


def test_dataset_profile_generates_pairs():
    hc2 = get_profile("hc2", scale=0.1)
    reference, pairs = hc2.generate_paired(insert_size_mean=400.0)
    assert reference is not None
    assert pairs
    assert pairs[0].read1.name.endswith("/1")
    assert pairs[0].read2.name.endswith("/2")
    hc14 = get_profile("hc14", scale=0.05)
    reference, pairs = hc14.generate_paired(insert_size_mean=400.0)
    assert reference is None  # no published reference, as in Table I
    assert pairs
