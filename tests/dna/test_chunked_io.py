"""Chunked FASTQ ingest: bounded batches, same records, lazy draining."""

from __future__ import annotations

import io

import pytest

from repro.dna.io_fastq import (
    parse_fastq,
    parse_fastq_chunks,
    read_chunks,
    reads_from_strings,
    write_fastq,
)


def _fastq_text(reads):
    buffer = io.StringIO()
    write_fastq(reads, buffer)
    return buffer.getvalue()


def test_read_chunks_preserves_order_and_content():
    reads = reads_from_strings(["ACGT"] * 10)
    chunks = list(read_chunks(reads, 3))
    assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
    assert [read for chunk in chunks for read in chunk] == reads


def test_read_chunks_exact_multiple_has_no_empty_tail():
    reads = reads_from_strings(["ACGT"] * 6)
    chunks = list(read_chunks(reads, 3))
    assert [len(chunk) for chunk in chunks] == [3, 3]


def test_read_chunks_of_empty_input():
    assert list(read_chunks([], 4)) == []


def test_read_chunks_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        list(read_chunks(reads_from_strings(["ACGT"]), 0))


def test_read_chunks_drains_generators_lazily():
    pulled = []

    def source():
        for read in reads_from_strings(["ACGT"] * 9):
            pulled.append(read.name)
            yield read

    iterator = read_chunks(source(), 4)
    first = next(iterator)
    assert len(first) == 4
    # Only one chunk's worth (plus nothing extra) has been pulled.
    assert len(pulled) == 4


def test_parse_fastq_chunks_matches_parse_fastq():
    reads = reads_from_strings(["ACGTACGT", "TTTTCCCC", "GGGGAAAA"])
    text = _fastq_text(reads)
    whole = list(parse_fastq(io.StringIO(text)))
    chunked = [
        read
        for chunk in parse_fastq_chunks(io.StringIO(text), chunk_reads=2)
        for read in chunk
    ]
    assert chunked == whole
