"""Tests for the ``repro-assemble`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_an_input_source(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
    assert "required" in capsys.readouterr().err


def test_parser_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--simulate", "1000", "--backend", "spark"])
    assert "invalid choice" in capsys.readouterr().err


def test_cli_rejects_even_k(capsys):
    with pytest.raises(SystemExit):
        main(["--simulate", "1000", "-k", "16"])
    assert "odd" in capsys.readouterr().err


def test_cli_assembles_simulated_reads(capsys):
    assert main(["--simulate", "1500", "-k", "15", "--workers", "2"]) == 0
    output = capsys.readouterr().out
    assert "assembling" in output
    assert "contigs=" in output
    assert "n50=" in output
    assert "[dbg-construction]" in output


def test_cli_quiet_mode_prints_single_line(capsys):
    assert main(["--simulate", "1500", "-k", "15", "--quiet"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("contigs=")


def test_cli_multiprocess_backend(capsys):
    assert (
        main(
            [
                "--simulate",
                "1500",
                "-k",
                "15",
                "--workers",
                "2",
                "--backend",
                "multiprocess",
                "--quiet",
            ]
        )
        == 0
    )
    assert capsys.readouterr().out.startswith("contigs=")


def test_cli_writes_fasta(tmp_path, capsys):
    output = tmp_path / "contigs.fa"
    assert main(["--simulate", "1500", "-k", "15", "--output", str(output)]) == 0
    text = output.read_text()
    assert text.startswith(">contig_0")
    assert str(output) in capsys.readouterr().out


def test_cli_missing_fastq_reports_error(tmp_path, capsys):
    missing = tmp_path / "nope.fastq"
    assert main(["--fastq", str(missing)]) == 1
    assert "failed to load reads" in capsys.readouterr().err


def test_cli_dataset_profile(capsys):
    assert main(["--dataset", "hc2", "--scale", "0.02", "--quiet"]) == 0
    assert capsys.readouterr().out.startswith("contigs=")
