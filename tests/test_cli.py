"""Tests for the ``repro-assemble`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_cli_requires_an_input_source(capsys):
    # The argparse group itself is optional (--list-stages works without
    # input), so the requirement is enforced by main().
    with pytest.raises(SystemExit):
        main([])
    assert "required" in capsys.readouterr().err


def test_parser_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--simulate", "1000", "--backend", "spark"])
    assert "invalid choice" in capsys.readouterr().err


def test_cli_rejects_even_k(capsys):
    with pytest.raises(SystemExit):
        main(["--simulate", "1000", "-k", "16"])
    assert "odd" in capsys.readouterr().err


def test_cli_assembles_simulated_reads(capsys):
    assert main(["--simulate", "1500", "-k", "15", "--workers", "2"]) == 0
    output = capsys.readouterr().out
    assert "assembling" in output
    assert "contigs=" in output
    assert "n50=" in output
    assert "[dbg-construction]" in output


def test_cli_quiet_mode_prints_single_line(capsys):
    assert main(["--simulate", "1500", "-k", "15", "--quiet"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("contigs=")


def test_cli_multiprocess_backend(capsys):
    assert (
        main(
            [
                "--simulate",
                "1500",
                "-k",
                "15",
                "--workers",
                "2",
                "--backend",
                "multiprocess",
                "--quiet",
            ]
        )
        == 0
    )
    assert capsys.readouterr().out.startswith("contigs=")


def test_cli_writes_fasta(tmp_path, capsys):
    output = tmp_path / "contigs.fa"
    assert main(["--simulate", "1500", "-k", "15", "--output", str(output)]) == 0
    text = output.read_text()
    assert text.startswith(">contig_0")
    assert str(output) in capsys.readouterr().out


def test_cli_missing_fastq_reports_error(tmp_path, capsys):
    missing = tmp_path / "nope.fastq"
    assert main(["--fastq", str(missing)]) == 1
    assert "failed to load reads" in capsys.readouterr().err


def test_cli_dataset_profile(capsys):
    assert main(["--dataset", "hc2", "--scale", "0.02", "--quiet"]) == 0
    assert capsys.readouterr().out.startswith("contigs=")


def test_cli_scaffold_requires_pairing(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["--fastq", str(tmp_path / "reads.fastq"), "--scaffold"])
    assert "pairing" in capsys.readouterr().err


def test_cli_scaffolds_simulated_pairs(tmp_path, capsys):
    scaffolds = tmp_path / "scaffolds.fa"
    assert (
        main(
            [
                "--simulate",
                "6000",
                "-k",
                "17",
                "--scaffold",
                "--insert-size",
                "400",
                "--workers",
                "2",
                "--scaffold-output",
                str(scaffolds),
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "[scaffolding]" in output
    assert "scaffold_n50=" in output
    assert scaffolds.read_text().startswith(">scaffold_0")


def test_cli_list_stages_needs_no_input(capsys):
    assert main(["--list-stages", "--scaffold"]) == 0
    output = capsys.readouterr().out
    assert "workflow ppa-assembly" in output
    assert "dbg-construction" in output
    assert "scaffolding" in output
    # Listing must not run anything.
    assert "contigs=" not in output


def test_cli_list_stages_reflects_config(capsys):
    assert main(["--list-stages"]) == 0
    output = capsys.readouterr().out
    assert "scaffolding" not in output
    assert "contig-merging/round-2" in output


def test_cli_resume_requires_checkpoint_dir(capsys):
    with pytest.raises(SystemExit):
        main(["--simulate", "1500", "-k", "15", "--resume"])
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_cli_checkpoint_then_resume_matches(tmp_path, capsys):
    checkpoint_dir = tmp_path / "ckpt"
    args = ["--simulate", "2000", "-k", "15", "--workers", "2", "--quiet",
            "--checkpoint-dir", str(checkpoint_dir)]
    assert main(args) == 0
    first = capsys.readouterr().out.strip()
    assert list(checkpoint_dir.glob("checkpoint-*.pkl"))

    assert main(args + ["--resume"]) == 0
    resumed = capsys.readouterr().out.strip()
    # Identical statistics; only the wall-clock differs between a full
    # run and an instant resume-of-completed-run.
    strip = lambda line: line.split(" wall_seconds=")[0]  # noqa: E731
    assert strip(resumed) == strip(first)


def test_cli_metrics_json_writes_the_service_result_payload(tmp_path, capsys):
    import json

    path = tmp_path / "metrics.json"
    assert (
        main(
            ["--simulate", "1500", "-k", "15", "--workers", "2", "--quiet",
             "--metrics-json", str(path)]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == 1
    assert payload["contigs"]["count"] >= 1
    assert payload["contigs"]["n50"] >= 1
    # Simulating modes know the genome, so NG50 is present.
    assert payload["contigs"]["ng50"] >= 1
    assert payload["reference_length"] == 1500
    assert payload["config"]["k"] == 15
    # Per-stage wall-clock timings, one entry per workflow stage.
    assert payload["stage_seconds"]
    assert all(seconds >= 0 for seconds in payload["stage_seconds"].values())
    assert payload["wall_seconds"] > 0
    assert payload["scaffolds"] is None


def test_cli_metrics_json_covers_scaffolds(tmp_path):
    import json

    path = tmp_path / "metrics.json"
    assert (
        main(
            ["--simulate", "6000", "-k", "17", "--scaffold", "--insert-size",
             "400", "--workers", "2", "--quiet", "--metrics-json", str(path)]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["scaffolds"] is not None
    assert payload["scaffolds"]["count"] >= 1
    assert payload["scaffolds"]["n50"] >= 1


def test_submit_verb_and_one_shot_cli_build_the_same_input_block():
    # Identical source flags must materialise identical reads on both
    # surfaces (regression: --insert-std used to be dropped by `submit`
    # unless --insert-size was also given).
    from repro.service.cli import _build_spec, build_service_parser

    args = build_service_parser().parse_args(
        ["submit", "--simulate", "2000", "--scaffold", "--insert-std", "80"]
    )
    spec = _build_spec(args)
    assert spec.input["insert_std"] == 80.0
    assert spec.input["mode"] == "simulate"


def test_service_verb_tables_stay_in_sync():
    # cli.py mirrors the verb tuple as a literal so one-shot runs never
    # import the serving stack; the mirror must not drift.
    from repro.cli import _SERVICE_VERBS
    from repro.service.cli import SERVICE_VERBS

    assert _SERVICE_VERBS == SERVICE_VERBS


def test_one_shot_cli_does_not_import_the_serving_stack():
    import subprocess
    import sys

    # http.server must not be loaded by a plain one-shot run.
    code = (
        "import sys; from repro.cli import main;"
        " main(['--simulate', '1500', '-k', '15', '--quiet']);"
        " sys.exit(1 if 'http.server' in sys.modules else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_cli_service_verbs_are_dispatched(capsys):
    # Without a reachable server the client verb fails cleanly (exit 1,
    # message on stderr) instead of falling into the assembler parser.
    assert main(["status", "0" * 32, "--url", "http://127.0.0.1:1"]) == 1
    assert "could not reach the service" in capsys.readouterr().err


def test_cli_serve_verb_has_its_own_parser(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--no-such-flag"])
    assert "unrecognized arguments" in capsys.readouterr().err


def test_cli_assembles_fastq_pair(tmp_path, capsys):
    from repro.dna import simulate_paired_dataset, write_paired_fastq

    _genome, pairs = simulate_paired_dataset(
        4_000, coverage=15, insert_size_mean=300.0, insert_size_std=25.0, seed=6
    )
    path1, path2 = tmp_path / "r_1.fastq", tmp_path / "r_2.fastq"
    write_paired_fastq(pairs, path1, path2)
    assert (
        main(
            [
                "--fastq-pair",
                str(path1),
                str(path2),
                "-k",
                "17",
                "--scaffold",
                "--workers",
                "2",
                "--quiet",
            ]
        )
        == 0
    )
    assert "scaffolds=" in capsys.readouterr().out


def test_cli_trace_out_writes_span_tree(tmp_path, capsys):
    from repro.telemetry import NoopTracer, get_tracer

    trace_path = tmp_path / "trace.json"
    assert (
        main(
            [
                "--simulate", "1500", "-k", "15", "--workers", "2",
                "--trace-out", str(trace_path),
            ]
        )
        == 0
    )
    assert "wrote trace to" in capsys.readouterr().out
    # The flag's tracer is scoped to the run: the process default stays no-op.
    assert isinstance(get_tracer(), NoopTracer)

    import json

    payload = json.loads(trace_path.read_text())
    root = payload["trace"]
    assert root["name"] == "assemble"
    assert root["attributes"]["k"] == 15
    (workflow,) = root["children"]
    assert workflow["name"] == "workflow:ppa-assembly"
    stage_names = [child["name"] for child in workflow["children"]]
    assert "stage:dbg-construction" in stage_names


def test_cli_log_json_emits_structured_lines(tmp_path, capsys):
    import json
    import logging

    assert (
        main(
            ["--simulate", "1500", "-k", "15", "--quiet", "--log-json",
             "--log-level", "debug"]
        )
        == 0
    )
    handler = logging.getLogger().handlers[0]
    try:
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "structured", (), None
        )
        entry = json.loads(handler.format(record))
        assert entry["message"] == "structured"
        assert logging.getLogger().level == logging.DEBUG
    finally:
        logging.getLogger().removeHandler(handler)
        logging.getLogger().setLevel(logging.WARNING)


def test_cli_rejects_unknown_log_level(capsys):
    with pytest.raises(SystemExit):
        main(["--simulate", "1000", "--log-level", "chatty"])
    assert "unknown log level" in capsys.readouterr().err


def test_cli_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as info:
        main(["--version"])
    assert info.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro-assemble {__version__}"


def test_cli_timeline_out_writes_jsonl_and_stays_scoped(tmp_path, capsys):
    from repro.telemetry import NullTimeline, get_timeline, read_timeline

    path = tmp_path / "timeline.jsonl"
    assert (
        main(
            ["--simulate", "1500", "-k", "15", "--workers", "2",
             "--timeline-out", str(path)]
        )
        == 0
    )
    assert "wrote timeline to" in capsys.readouterr().out
    # The flag's recorder is scoped to the run: the default stays inert.
    assert isinstance(get_timeline(), NullTimeline)

    events = read_timeline(path)
    kinds = {event["kind"] for event in events}
    assert {"superstep", "stage-start", "stage-end", "sample"} <= kinds
    timestamps = [event["ts"] for event in events]
    assert timestamps == sorted(timestamps)


def test_cli_profile_writes_folded_stacks_and_hotspots(tmp_path, capsys):
    import json

    folded = tmp_path / "profile.folded"
    metrics = tmp_path / "metrics.json"
    assert (
        main(
            ["--simulate", "1500", "-k", "15", "--workers", "2",
             "--profile", str(folded), "--metrics-json", str(metrics)]
        )
        == 0
    )
    assert "wrote collapsed profile stacks to" in capsys.readouterr().out
    lines = folded.read_text().splitlines()
    assert lines and all(line.rpartition(" ")[2].isdigit() for line in lines)
    assert any(line.startswith("stage:dbg-construction;") for line in lines)

    payload = json.loads(metrics.read_text())
    assert payload["profile"]["hotspots"]
    assert payload["profile"]["functions_profiled"] > 0
    assert payload["memory"]["peak_rss_bytes"] > 0


def test_cli_report_verb_renders_run_directory(tmp_path, capsys):
    import xml.etree.ElementTree as ET

    run_dir = tmp_path / "run"
    run_dir.mkdir()
    assert (
        main(
            ["--simulate", "1500", "-k", "15", "--workers", "2", "--quiet",
             "--trace-out", str(run_dir / "trace.json"),
             "--timeline-out", str(run_dir / "timeline.jsonl"),
             "--metrics-json", str(run_dir / "metrics.json")]
        )
        == 0
    )
    capsys.readouterr()

    output = tmp_path / "report.html"
    assert main(["report", str(run_dir), "-o", str(output)]) == 0
    assert "wrote report to" in capsys.readouterr().out
    html = output.read_text()
    ET.fromstring(html)  # well-formed (void tags closed, attrs quoted)
    assert "Span waterfall" in html
    assert "Resident set size" in html


def test_cli_report_verb_with_nothing_to_report_fails(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["report", str(tmp_path), "-o", str(tmp_path / "r.html")])
    assert "nothing to report on" in capsys.readouterr().err
