"""Execution-backend speedup — serial simulation vs real multiprocessing.

Every other benchmark reports *simulated* cluster seconds from the BSP
cost model; this one measures real wall-clock time of the two execution
backends on the current host.  Two workloads:

* a compute-bound Pregel job (each vertex burns a fixed arithmetic
  budget per superstep and floods a small token ring) — the shape that
  parallelises across worker processes;
* a scaled-down end-to-end assembly via ``run_ppa_timed`` — dominated
  by many short Pregel jobs, so process start-up overhead matters and
  the multiprocess win only appears at larger scales.

On a multi-core host the compute-bound workload must run measurably
faster on the multiprocess backend; on a single-core host (CI smoke
runs) the assertion degrades to "multiprocess produces identical
results", since no wall-clock win is physically possible there.
"""

from __future__ import annotations

import os
import time

from repro.bench import format_table, prepare_dataset, run_ppa_timed
from repro.pregel import PregelEngine, PregelJob, Vertex

#: Arithmetic iterations each vertex burns per superstep (scaled by
#: REPRO_BENCH_SCALE through the ``scale_multiplier`` fixture).
WORK_PER_SUPERSTEP = 12_000
NUM_VERTICES = 240
NUM_ROUNDS = 8
NUM_WORKERS = 4

#: Only assert a wall-clock win when the serial run is long enough for
#: compute to dominate the multiprocess backend's fixed costs (process
#: start-up, queue round-trips); below this the comparison is noise on
#: small shared CI runners.
MIN_SERIAL_SECONDS_FOR_ASSERT = 1.0


class BusyRingVertex(Vertex):
    """Burns a fixed compute budget per superstep on a token ring.

    ``value`` is ``(rounds_left, accumulator, work)``: the accumulator
    makes the arithmetic loop impossible to optimise away and gives the
    parity check something content-ful to compare, and carrying the
    work budget in vertex state (instead of e.g. a class attribute)
    keeps it intact when vertices are pickled into worker processes.
    """

    def compute(self, messages, ctx):
        rounds_left, accumulator, work = self.value
        accumulator = (accumulator + sum(messages)) & 0x7FFFFFFF
        for _ in range(work):
            accumulator = (accumulator * 1103515245 + 12345) & 0x7FFFFFFF
        rounds_left -= 1
        self.value = (rounds_left, accumulator, work)
        if rounds_left > 0:
            ctx.send(self.edges[0], accumulator & 0xFF)
        self.vote_to_halt()


def _build_ring(work: int):
    return [
        BusyRingVertex(
            i, value=(NUM_ROUNDS, i, work), edges=[(i + 1) % NUM_VERTICES]
        )
        for i in range(NUM_VERTICES)
    ]


def _time_backend(backend: str, work: int):
    engine = PregelEngine(NUM_WORKERS, backend=backend)
    job = PregelJob(name="busy-ring", vertices=_build_ring(work))
    started = time.perf_counter()
    result = engine.run(job)
    return result, time.perf_counter() - started


def _speedup_rows(scale_multiplier: float):
    work = max(100, int(WORK_PER_SUPERSTEP * scale_multiplier))
    serial_result, serial_seconds = _time_backend("serial", work)
    multiprocess_result, multiprocess_seconds = _time_backend("multiprocess", work)
    assert serial_result.vertex_values() == multiprocess_result.vertex_values()
    assert serial_result.metrics.summary() == multiprocess_result.metrics.summary()

    dataset = prepare_dataset("hc2", scale=0.05 * scale_multiplier)
    _serial_asm, serial_asm_seconds = run_ppa_timed(
        dataset, num_workers=NUM_WORKERS, backend="serial"
    )
    _mp_asm, multiprocess_asm_seconds = run_ppa_timed(
        dataset, num_workers=NUM_WORKERS, backend="multiprocess"
    )

    rows = [
        [
            "busy-ring (compute-bound)",
            f"{serial_seconds:.2f}",
            f"{multiprocess_seconds:.2f}",
            f"{serial_seconds / multiprocess_seconds:.2f}x",
        ],
        [
            "hc2 assembly (many short jobs)",
            f"{serial_asm_seconds:.2f}",
            f"{multiprocess_asm_seconds:.2f}",
            f"{serial_asm_seconds / multiprocess_asm_seconds:.2f}x",
        ],
    ]
    return rows, serial_seconds, multiprocess_seconds


def test_backend_wallclock_speedup(benchmark, scale_multiplier):
    rows, serial_seconds, multiprocess_seconds = benchmark.pedantic(
        _speedup_rows, args=(scale_multiplier,), rounds=1, iterations=1
    )
    cores = os.cpu_count() or 1
    print()
    print(f"Backend wall-clock comparison ({cores} cores, {NUM_WORKERS} workers)")
    print(
        format_table(
            ["workload", "serial s", "multiprocess s", "speedup"],
            rows,
        )
    )
    if cores >= 2 and serial_seconds >= MIN_SERIAL_SECONDS_FOR_ASSERT:
        # The whole point of the multiprocess backend: real speedup on
        # real hardware for compute-bound supersteps.
        assert multiprocess_seconds < serial_seconds, (
            f"expected multiprocess ({multiprocess_seconds:.2f}s) to beat "
            f"serial ({serial_seconds:.2f}s) on a {cores}-core host"
        )
    else:
        print(
            f"speedup assertion skipped ({cores} cores, serial "
            f"{serial_seconds:.2f}s < {MIN_SERIAL_SECONDS_FOR_ASSERT:.0f}s "
            "floor on scaled-down runs); parity still checked"
        )
