"""Execution-backend speedup — serial simulation vs real multiprocessing.

Every other benchmark reports *simulated* cluster seconds from the BSP
cost model; this one measures real wall-clock time of the execution
backends on the current host, across the multiprocess backend's full
transport/placement matrix (message plane shm vs queue, partitioner
hash vs prefix_range).  Two workloads:

* a compute-bound Pregel job (each vertex burns a fixed arithmetic
  budget per superstep and floods a small token ring) — the shape that
  parallelises across worker processes;
* a scaled-down end-to-end assembly via ``run_ppa_timed`` — dominated
  by many short Pregel jobs, so process start-up overhead matters and
  the multiprocess win only appears at larger scales.

Results land in ``BENCH_backend_speedup.json`` (shared schema-v2
envelope, see :mod:`repro.bench.schema`) with one row per
workload × backend × plane × partitioner: wall-clock seconds, speedup
against the serial run of the same partitioner, and the exact
``cross_worker_messages`` / total message counters.

Parity is always asserted — every combination must produce bit-identical
results to the serial oracle of the same partitioner, and prefix_range
must ship measurably fewer cross-worker messages than hash.  The
wall-clock assertion (multiprocess+shm beats serial) only fires on a
multi-core host with the serial run above a noise floor; the JSON
records ``cpu_count`` and ``speedup_asserted`` so downstream tooling
knows whether the numbers carry a parallelism signal.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import format_table, prepare_dataset, run_ppa_timed
from repro.bench.harness import BENCH_K, bench_scale
from repro.bench.schema import bench_report
from repro.pregel import PregelEngine, PregelJob, Vertex

#: Arithmetic iterations each vertex burns per superstep (scaled by
#: REPRO_BENCH_SCALE through the ``scale_multiplier`` fixture).
WORK_PER_SUPERSTEP = 12_000
NUM_VERTICES = 240
NUM_ROUNDS = 8
NUM_WORKERS = 4
DATASET = "hc2"

#: Only assert a wall-clock win when the serial run is long enough for
#: compute to dominate the multiprocess backend's fixed costs (process
#: start-up, queue round-trips); below this the comparison is noise on
#: small shared CI runners.
MIN_SERIAL_SECONDS_FOR_ASSERT = 1.0

#: The multiprocess transport/placement matrix measured per workload.
MP_COMBOS = (
    ("shm", "hash"),
    ("shm", "prefix_range"),
    ("queue", "hash"),
    ("queue", "prefix_range"),
)


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    root.mkdir(parents=True, exist_ok=True)
    return root / "BENCH_backend_speedup.json"


class BusyRingVertex(Vertex):
    """Burns a fixed compute budget per superstep on a token ring.

    ``value`` is ``(rounds_left, accumulator, work)``: the accumulator
    makes the arithmetic loop impossible to optimise away and gives the
    parity check something content-ful to compare, and carrying the
    work budget in vertex state (instead of e.g. a class attribute)
    keeps it intact when vertices are pickled into worker processes.
    """

    def compute(self, messages, ctx):
        rounds_left, accumulator, work = self.value
        accumulator = (accumulator + sum(messages)) & 0x7FFFFFFF
        for _ in range(work):
            accumulator = (accumulator * 1103515245 + 12345) & 0x7FFFFFFF
        rounds_left -= 1
        self.value = (rounds_left, accumulator, work)
        if rounds_left > 0:
            ctx.send(self.edges[0], accumulator & 0xFF)
        self.vote_to_halt()


def _build_ring(work: int):
    return [
        BusyRingVertex(
            i, value=(NUM_ROUNDS, i, work), edges=[(i + 1) % NUM_VERTICES]
        )
        for i in range(NUM_VERTICES)
    ]


def _time_ring(backend: str, work: int, message_plane: str, partitioner: str):
    engine = PregelEngine(
        NUM_WORKERS,
        backend=backend,
        message_plane=message_plane,
        partitioner=partitioner,
    )
    job = PregelJob(name="busy-ring", vertices=_build_ring(work))
    started = time.perf_counter()
    result = engine.run(job)
    return result, time.perf_counter() - started


def _row(workload, backend, plane, partitioner, seconds, serial_seconds, metrics):
    return {
        "workload": workload,
        "backend": backend,
        "message_plane": plane,
        "partitioner": partitioner,
        "seconds": round(seconds, 3),
        "speedup_vs_serial": round(serial_seconds / seconds, 3) if seconds else None,
        "cross_worker_messages": metrics.summary()["cross_worker_messages"],
        "total_messages": metrics.summary()["messages"],
    }


def _measure_matrix(scale_multiplier: float):
    """Run both workloads over the full matrix; returns (rows, headline)."""
    rows = []

    # -- compute-bound ring (hash partitioner; the ring's placement is
    #    irrelevant to the compute cost, and one partitioner keeps the
    #    serial baseline comparable across planes) ---------------------
    work = max(100, int(WORK_PER_SUPERSTEP * scale_multiplier))
    ring_oracle, ring_serial_seconds = _time_ring("serial", work, "queue", "hash")
    rows.append(
        _row("busy_ring", "serial", "-", "hash", ring_serial_seconds,
             ring_serial_seconds, ring_oracle.metrics)
    )
    ring_shm_seconds = None
    for plane in ("shm", "queue"):
        result, seconds = _time_ring("multiprocess", work, plane, "hash")
        assert result.vertex_values() == ring_oracle.vertex_values()
        assert result.metrics.summary() == ring_oracle.metrics.summary()
        rows.append(
            _row("busy_ring", "multiprocess", plane, "hash", seconds,
                 ring_serial_seconds, result.metrics)
        )
        if plane == "shm":
            ring_shm_seconds = seconds

    # -- end-to-end assembly across the full matrix --------------------
    dataset = prepare_dataset(DATASET, scale=0.05 * scale_multiplier)
    serial = {}
    for partitioner in ("hash", "prefix_range"):
        result, seconds = run_ppa_timed(
            dataset, num_workers=NUM_WORKERS, backend="serial",
            partitioner=partitioner,
        )
        serial[partitioner] = (result, seconds)
        rows.append(
            _row("assembly", "serial", "-", partitioner, seconds, seconds,
                 result.metrics)
        )
    for plane, partitioner in MP_COMBOS:
        oracle, serial_seconds = serial[partitioner]
        result, seconds = run_ppa_timed(
            dataset, num_workers=NUM_WORKERS, backend="multiprocess",
            message_plane=plane, partitioner=partitioner,
        )
        # Parity against the serial oracle of the same partitioner is
        # non-negotiable regardless of core count.
        assert result.contigs == oracle.contigs
        assert result.metrics.summary() == oracle.metrics.summary()
        rows.append(
            _row("assembly", "multiprocess", plane, partitioner, seconds,
                 serial_seconds, result.metrics)
        )

    # The locality claim is wall-clock independent: prefix_range must
    # ship fewer cross-worker messages than hash on the same workload.
    hash_cross = serial["hash"][0].metrics.summary()["cross_worker_messages"]
    range_cross = serial["prefix_range"][0].metrics.summary()["cross_worker_messages"]
    assert range_cross < hash_cross, (
        f"prefix_range cross traffic ({range_cross}) not below hash ({hash_cross})"
    )

    return rows, ring_serial_seconds, ring_shm_seconds


def test_backend_wallclock_speedup(benchmark, scale_multiplier):
    rows, ring_serial_seconds, ring_shm_seconds = benchmark.pedantic(
        _measure_matrix, args=(scale_multiplier,), rounds=1, iterations=1
    )
    cores = os.cpu_count() or 1
    speedup_asserted = (
        cores >= 2 and ring_serial_seconds >= MIN_SERIAL_SECONDS_FOR_ASSERT
    )

    report = bench_report(
        benchmark="backend_speedup",
        dataset=DATASET,
        scale=bench_scale(),
        k=BENCH_K,
        cpu_count=cores,
        num_workers=NUM_WORKERS,
        speedup_asserted=speedup_asserted,
        rows=rows,
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Backend wall-clock matrix ({cores} cores, {NUM_WORKERS} workers) "
        f"-> {output.name}"
    )
    print(
        format_table(
            ["workload", "backend", "plane", "partitioner", "s", "speedup", "cross"],
            [
                [
                    row["workload"],
                    row["backend"],
                    row["message_plane"],
                    row["partitioner"],
                    f"{row['seconds']:.2f}",
                    f"{row['speedup_vs_serial']:.2f}x",
                    str(row["cross_worker_messages"]),
                ]
                for row in rows
            ],
        )
    )
    if speedup_asserted:
        # The whole point of the multiprocess backend: real speedup on
        # real hardware for compute-bound supersteps, with the shm
        # plane carrying the message traffic.
        assert ring_shm_seconds < ring_serial_seconds, (
            f"expected multiprocess+shm ({ring_shm_seconds:.2f}s) to beat "
            f"serial ({ring_serial_seconds:.2f}s) on a {cores}-core host"
        )
    else:
        print(
            f"speedup assertion skipped ({cores} cores, serial ring "
            f"{ring_serial_seconds:.2f}s vs {MIN_SERIAL_SECONDS_FOR_ASSERT:.0f}s "
            "floor); parity and locality still asserted"
        )
