"""Job-service throughput benchmark: jobs/sec and queue latency.

Runs the durable assembly job service in-process (store + bounded
worker pool, the same execution path the REST API drives) and pushes a
burst of identical small assembly jobs through it at several worker
counts.  Two serving numbers come out per count:

* **jobs/sec** — burst size / wall-clock from first submission to last
  terminal state;
* **queue latency** — how long a job waited for a worker slot, read
  from the ``claim_latency_seconds`` field of each job's durable
  ``started`` event.  The store stamps that with a **monotonic** clock
  captured at enqueue time, so the number is immune to wall-clock
  steps/NTP slew; the wall-clock ``started_at - created_at`` difference
  is only the fallback for jobs predating the field.

The run also re-asserts the scheduler's bounding invariant (never more
than ``num_workers`` concurrently running jobs) from the recorded
start/finish timestamps, and writes ``BENCH_service.json`` via the
shared :mod:`repro.bench.schema` envelope so CI can track the serving
numbers over time.

Reading the numbers: worker threads share one GIL, so jobs/sec of
these CPU-bound pure-Python jobs stays roughly flat as the pool widens
— what widening buys is *queue latency* (time to a worker slot), and
isolation of many tenants, which is what the assertion pins.  Genuine
compute scaling is the execution backend's job (``multiprocess``),
orthogonal to the pool width.

Output location: the repository root by default, overridable with
``REPRO_BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.bench import bench_report, bench_scale, format_table
from repro.service import AssemblyService, JobSpec

#: Worker counts to serve the burst with (the acceptance criterion
#: needs at least two).
WORKER_COUNTS = (1, 2, 4)

#: Jobs per burst.  Deliberately larger than every worker count so the
#: queue is always contended.
BURST_SIZE = 8

GENOME_LENGTH = 2_000
K = 15


def _burst_specs():
    return [
        JobSpec(
            input={
                "mode": "simulate",
                "genome_length": GENOME_LENGTH,
                "seed": seed,
            },
            config={"k": K, "num_workers": 2},
        )
        for seed in range(BURST_SIZE)
    ]


def _wait_all(service, job_ids, timeout=600.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        records = [service.store.get(job_id) for job_id in job_ids]
        if all(record.is_terminal for record in records):
            return records
        time.sleep(0.02)
    raise AssertionError("burst did not finish in time")


def _claim_latency(store, record) -> float:
    """The job's queue wait, from its durable ``started`` event.

    Prefers the monotonic ``claim_latency_seconds`` the store captured
    at enqueue time (the last ``started`` event, i.e. the final
    attempt); falls back to the wall-clock timestamp difference for
    records without one.
    """
    latency = None
    for event in store.events(record.id):
        if event.type == "started":
            latency = event.payload.get("claim_latency_seconds", latency)
    if latency is not None:
        return float(latency)
    return max(0.0, record.started_at - record.created_at)


def _max_overlap(records) -> int:
    boundaries = []
    for record in records:
        boundaries.append((record.started_at, 1))
        boundaries.append((record.finished_at, -1))
    overlap = peak = 0
    for _, delta in sorted(boundaries):
        overlap += delta
        peak = max(peak, overlap)
    return peak


def _serve_burst(num_workers: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as data_dir:
        service = AssemblyService(
            data_dir, num_workers=num_workers, port=0, poll_interval=0.02
        )
        with service:
            started = time.perf_counter()
            job_ids = [service.submit(spec).id for spec in _burst_specs()]
            records = _wait_all(service, job_ids)
            elapsed = time.perf_counter() - started
            latencies = [
                _claim_latency(service.store, record) for record in records
            ]

    assert all(record.state == "succeeded" for record in records)
    peak = _max_overlap(records)
    assert peak <= num_workers, (
        f"{peak} jobs ran concurrently with only {num_workers} workers"
    )
    return {
        "jobs": len(records),
        "elapsed_seconds": round(elapsed, 6),
        "jobs_per_second": round(len(records) / elapsed, 3),
        "queue_latency_mean_seconds": round(sum(latencies) / len(latencies), 6),
        "queue_latency_max_seconds": round(max(latencies), 6),
        "max_concurrent": peak,
    }


def _bench_all():
    return {workers: _serve_burst(workers) for workers in WORKER_COUNTS}


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    return root / "BENCH_service.json"


def test_service_throughput(benchmark):
    results = benchmark.pedantic(_bench_all, rounds=1, iterations=1)

    report = bench_report(
        benchmark="service_throughput",
        dataset=f"simulate-{GENOME_LENGTH}bp",
        scale=bench_scale(1.0),
        k=K,
        burst_size=BURST_SIZE,
        worker_counts={str(workers): row for workers, row in results.items()},
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Service throughput: burst of {BURST_SIZE} jobs "
        f"({GENOME_LENGTH} bp simulated genomes, k={K})"
    )
    print(
        format_table(
            ["workers", "jobs/s", "elapsed s", "queue mean s", "queue max s", "peak running"],
            [
                [
                    workers,
                    f"{row['jobs_per_second']:.2f}",
                    f"{row['elapsed_seconds']:.2f}",
                    f"{row['queue_latency_mean_seconds']:.3f}",
                    f"{row['queue_latency_max_seconds']:.3f}",
                    row["max_concurrent"],
                ]
                for workers, row in results.items()
            ],
        )
    )
    print(f"wrote {output}")

    # More workers must shorten the wait for a slot.  (Wall-clock
    # jobs/sec of CPU-bound pure-Python jobs does NOT scale with
    # thread-pool width — the GIL serialises the compute — which the
    # recorded numbers document honestly; the scheduler's measurable
    # win is queue latency, so that is what gets asserted.)
    single = results[WORKER_COUNTS[0]]["queue_latency_max_seconds"]
    widest = results[WORKER_COUNTS[-1]]["queue_latency_max_seconds"]
    assert widest <= single, (
        f"max queue latency did not improve with more workers: "
        f"{widest}s at {WORKER_COUNTS[-1]} workers vs {single}s at "
        f"{WORKER_COUNTS[0]}"
    )
