"""Job-service throughput benchmark: jobs/sec and queue latency.

Runs the durable assembly job service in-process (store + bounded
worker pool, the same execution path the REST API drives) and pushes a
burst of identical small assembly jobs through it at several worker
counts.  Two serving numbers come out per count:

* **jobs/sec** — burst size / wall-clock from first submission to last
  terminal state;
* **queue latency** — how long a job waited for a worker slot, read
  from the ``claim_latency_seconds`` field of each job's durable
  ``started`` event.  The store stamps that with a **monotonic** clock
  captured at enqueue time, so the number is immune to wall-clock
  steps/NTP slew; the wall-clock ``started_at - created_at`` difference
  is only the fallback for jobs predating the field.

The run also re-asserts the scheduler's bounding invariant (never more
than ``num_workers`` concurrently running jobs) from the recorded
start/finish timestamps, measures **worker-kill recovery latency**
(SIGKILL a worker process mid-job; how long until the supervisor has
the job re-claimed, and until it succeeds), and writes
``BENCH_service.json`` via the shared :mod:`repro.bench.schema`
envelope so CI can track the serving numbers over time.

Reading the numbers: the pool runs the default **process plane**, so
these CPU-bound jobs scale with cores — jobs/sec should rise
monotonically from 1 to 4 workers on a ≥4-core machine (asserted when
the machine qualifies; a 1-core CI box can only document flatness).
Queue latency (time to a worker slot) improves with pool width on any
machine, which is what the unconditional assertion pins.

Output location: the repository root by default, overridable with
``REPRO_BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
from pathlib import Path

from repro.bench import bench_report, bench_scale, format_table
from repro.service import AssemblyService, JobSpec

#: Worker counts to serve the burst with (the acceptance criterion
#: needs at least two).
WORKER_COUNTS = (1, 2, 4)

#: Jobs per burst.  Deliberately larger than every worker count so the
#: queue is always contended.
BURST_SIZE = 8

GENOME_LENGTH = 2_000
K = 15

#: Genome for the worker-kill scenario: big enough that the job is
#: reliably mid-run when the SIGKILL lands.
RECOVERY_GENOME_LENGTH = 8_000


def _burst_specs():
    return [
        JobSpec(
            input={
                "mode": "simulate",
                "genome_length": GENOME_LENGTH,
                "seed": seed,
            },
            config={"k": K, "num_workers": 2},
        )
        for seed in range(BURST_SIZE)
    ]


def _wait_all(service, job_ids, timeout=600.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        records = [service.store.get(job_id) for job_id in job_ids]
        if all(record.is_terminal for record in records):
            return records
        time.sleep(0.02)
    raise AssertionError("burst did not finish in time")


def _claim_latency(store, record) -> float:
    """The job's queue wait, from its durable ``started`` event.

    Prefers the monotonic ``claim_latency_seconds`` the store captured
    at enqueue time (the last ``started`` event, i.e. the final
    attempt); falls back to the wall-clock timestamp difference for
    records without one.
    """
    latency = None
    for event in store.events(record.id):
        if event.type == "started":
            latency = event.payload.get("claim_latency_seconds", latency)
    if latency is not None:
        return float(latency)
    return max(0.0, record.started_at - record.created_at)


def _max_overlap(records) -> int:
    boundaries = []
    for record in records:
        boundaries.append((record.started_at, 1))
        boundaries.append((record.finished_at, -1))
    overlap = peak = 0
    for _, delta in sorted(boundaries):
        overlap += delta
        peak = max(peak, overlap)
    return peak


def _serve_burst(num_workers: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as data_dir:
        service = AssemblyService(
            data_dir, num_workers=num_workers, port=0, poll_interval=0.02
        )
        with service:
            started = time.perf_counter()
            job_ids = [service.submit(spec).id for spec in _burst_specs()]
            records = _wait_all(service, job_ids)
            elapsed = time.perf_counter() - started
            latencies = [
                _claim_latency(service.store, record) for record in records
            ]

    assert all(record.state == "succeeded" for record in records)
    peak = _max_overlap(records)
    assert peak <= num_workers, (
        f"{peak} jobs ran concurrently with only {num_workers} workers"
    )
    return {
        "jobs": len(records),
        "elapsed_seconds": round(elapsed, 6),
        "jobs_per_second": round(len(records) / elapsed, 3),
        "queue_latency_mean_seconds": round(sum(latencies) / len(latencies), 6),
        "queue_latency_max_seconds": round(max(latencies), 6),
        "max_concurrent": peak,
    }


def _kill_recovery() -> dict:
    """SIGKILL a worker process mid-job; time the recovery.

    Two numbers: ``reclaim_seconds`` (kill → the job's next ``started``
    event, i.e. supervisor noticed the death, reclaimed the lease, a
    respawned worker re-claimed) and ``recovered_seconds`` (kill → the
    job terminal-succeeded, resuming from its surviving checkpoints).
    """
    with tempfile.TemporaryDirectory(prefix="bench-service-") as data_dir:
        service = AssemblyService(
            data_dir, num_workers=1, port=0, poll_interval=0.02,
            reap_interval=0.1,
        )
        with service:
            record = service.submit(
                JobSpec(
                    input={
                        "mode": "simulate",
                        "genome_length": RECOVERY_GENOME_LENGTH,
                        "seed": 1,
                    },
                    config={"k": K, "num_workers": 2},
                    retry={"backoff_seconds": 0.05},
                )
            )
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                events = service.store.events(record.id)
                if any(event.type == "checkpoint" for event in events):
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("recovery job never checkpointed")
            pids = service.pool.worker_pids()
            assert pids, "no worker process to kill"
            killed_at = time.monotonic()
            os.kill(pids[0], signal.SIGKILL)

            reclaim_seconds = None
            while time.monotonic() < deadline:
                events = service.store.events(record.id)
                starts = [event for event in events if event.type == "started"]
                if reclaim_seconds is None and len(starts) >= 2:
                    reclaim_seconds = time.monotonic() - killed_at
                current = service.store.get(record.id)
                if current.is_terminal:
                    break
                time.sleep(0.01)
            recovered_seconds = time.monotonic() - killed_at
            final = service.store.get(record.id)

    assert final.state == "succeeded", f"recovery job ended {final.state}"
    assert final.attempts >= 2
    assert reclaim_seconds is not None, "job was never re-claimed"
    return {
        "genome_length": RECOVERY_GENOME_LENGTH,
        "attempts": final.attempts,
        "reclaim_seconds": round(reclaim_seconds, 6),
        "recovered_seconds": round(recovered_seconds, 6),
    }


def _bench_all():
    return {
        "worker_counts": {
            workers: _serve_burst(workers) for workers in WORKER_COUNTS
        },
        "worker_kill_recovery": _kill_recovery(),
    }


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    root.mkdir(parents=True, exist_ok=True)
    return root / "BENCH_service.json"


def test_service_throughput(benchmark):
    results = benchmark.pedantic(_bench_all, rounds=1, iterations=1)
    by_workers = results["worker_counts"]
    recovery = results["worker_kill_recovery"]

    report = bench_report(
        benchmark="service_throughput",
        dataset=f"simulate-{GENOME_LENGTH}bp",
        scale=bench_scale(1.0),
        k=K,
        burst_size=BURST_SIZE,
        worker_plane="process",
        cpu_count=os.cpu_count(),
        worker_counts={str(workers): row for workers, row in by_workers.items()},
        worker_kill_recovery=recovery,
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Service throughput: burst of {BURST_SIZE} jobs "
        f"({GENOME_LENGTH} bp simulated genomes, k={K}, process workers, "
        f"{os.cpu_count()} cpu(s))"
    )
    print(
        format_table(
            ["workers", "jobs/s", "elapsed s", "queue mean s", "queue max s", "peak running"],
            [
                [
                    workers,
                    f"{row['jobs_per_second']:.2f}",
                    f"{row['elapsed_seconds']:.2f}",
                    f"{row['queue_latency_mean_seconds']:.3f}",
                    f"{row['queue_latency_max_seconds']:.3f}",
                    row["max_concurrent"],
                ]
                for workers, row in by_workers.items()
            ],
        )
    )
    print(
        f"worker-kill recovery ({recovery['genome_length']} bp job, "
        f"SIGKILL mid-run): re-claimed in {recovery['reclaim_seconds']:.2f}s, "
        f"succeeded {recovery['recovered_seconds']:.2f}s after the kill "
        f"({recovery['attempts']} attempts)"
    )
    print(f"wrote {output}")

    # More workers must shorten the wait for a slot, on any machine.
    single = by_workers[WORKER_COUNTS[0]]["queue_latency_max_seconds"]
    widest = by_workers[WORKER_COUNTS[-1]]["queue_latency_max_seconds"]
    assert widest <= single, (
        f"max queue latency did not improve with more workers: "
        f"{widest}s at {WORKER_COUNTS[-1]} workers vs {single}s at "
        f"{WORKER_COUNTS[0]}"
    )

    # With process workers the compute itself parallelises — but only
    # where there are cores to run on.  Assert monotonic jobs/sec up to
    # 4 workers when the machine has at least 4 cores; a 1-core box
    # records honest flatness instead of a vacuously red assertion.
    if os.cpu_count() and os.cpu_count() >= WORKER_COUNTS[-1]:
        rates = [by_workers[w]["jobs_per_second"] for w in WORKER_COUNTS]
        assert rates == sorted(rates), (
            f"jobs/sec not monotonic across {WORKER_COUNTS} process "
            f"workers on a {os.cpu_count()}-core machine: {rates}"
        )
