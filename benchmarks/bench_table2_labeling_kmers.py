"""Table II — bidirectional list ranking vs simplified S-V for labeling k-mers.

The paper compares the two contig-labeling methods on the first ②
operation of the workflow (labeling the unambiguous k-mers of the
freshly built de Bruijn graph) and reports, per dataset: the number of
supersteps, the number of messages and the runtime.  The expected shape
is that list ranking needs far fewer supersteps (tens vs ~90), sends
2-4x fewer messages, and is ~2-3x faster.
"""

from __future__ import annotations

import pytest

from repro.assembler import build_dbg, label_contigs
from repro.bench import BENCH_K, bench_cluster_profile, format_table, ppa_config, prepare_dataset
from repro.pregel.cost_model import CostModel
from repro.workflow import StageExecutor

_DATASET_SCALES = {"hc2": 0.25, "hcx": 0.25, "hc14": 0.2, "bi": 0.12}
_WORKERS = 16


def _measure_labeling(dataset_name: str, scale: float, method: str):
    dataset = prepare_dataset(dataset_name, scale=scale)
    config = ppa_config(num_workers=_WORKERS, labeling_method=method)
    chain = StageExecutor(num_workers=_WORKERS)
    graph = build_dbg(dataset.reads, config, chain).graph
    labeling = label_contigs(graph, config, chain, include_contigs=False)
    model = CostModel(bench_cluster_profile())
    seconds = sum(model.job_seconds(job) for job in labeling.metrics)
    return {
        "supersteps": labeling.num_supersteps,
        "messages": labeling.num_messages,
        "seconds": seconds,
    }


def _table2_rows(scale_multiplier: float):
    rows = []
    for dataset_name, base_scale in _DATASET_SCALES.items():
        scale = base_scale * scale_multiplier
        lr = _measure_labeling(dataset_name, scale, "list_ranking")
        sv = _measure_labeling(dataset_name, scale, "sv")
        rows.append(
            [
                dataset_name.upper(),
                lr["supersteps"],
                sv["supersteps"],
                lr["messages"],
                sv["messages"],
                f"{lr['seconds']:.1f}",
                f"{sv['seconds']:.1f}",
            ]
        )
    return rows


def test_table2_lr_vs_sv_for_kmers(benchmark, scale_multiplier):
    rows = benchmark.pedantic(_table2_rows, args=(scale_multiplier,), rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            headers=[
                "Dataset",
                "LR supersteps",
                "S-V supersteps",
                "LR messages",
                "S-V messages",
                "LR runtime (s)",
                "S-V runtime (s)",
            ],
            rows=rows,
            title="Table II — LR vs S-V for labeling unambiguous k-mers",
        )
    )
    for row in rows:
        _dataset, lr_steps, sv_steps, lr_messages, sv_messages, lr_seconds, sv_seconds = row
        assert lr_steps < sv_steps
        assert lr_messages < sv_messages
        assert float(lr_seconds) <= float(sv_seconds)
