"""Table I — the evaluation datasets.

The paper's Table I lists, for each of the four datasets, the number of
reads, the average read length, and the reference sequence length (when
a reference exists).  This benchmark materialises the scaled synthetic
stand-ins and prints the paper values next to the scaled values, so the
correspondence is auditable.
"""

from __future__ import annotations

from repro.bench import format_table, prepare_dataset
from repro.dna.datasets import all_profiles

_SCALES = {"hc2": 0.25, "hcx": 0.25, "hc14": 0.25, "bi": 0.15}


def _rows(scale_multiplier: float):
    rows = []
    for profile in all_profiles():
        scaled = prepare_dataset(profile.name, scale=_SCALES[profile.name] * scale_multiplier)
        reads = scaled.reads
        average_length = sum(len(read) for read in reads) / len(reads)
        rows.append(
            [
                profile.paper_name,
                f"{profile.paper_reads_millions} M",
                f"{profile.paper_read_length} bp",
                profile.paper_reference_length or "-",
                len(reads),
                f"{average_length:.0f} bp",
                len(scaled.reference) if scaled.reference is not None else "-",
            ]
        )
    return rows


def test_table1_dataset_inventory(benchmark, scale_multiplier):
    rows = benchmark.pedantic(_rows, args=(scale_multiplier,), rounds=1, iterations=1)
    table = format_table(
        headers=[
            "Dataset",
            "paper #reads",
            "paper read len",
            "paper ref len",
            "scaled #reads",
            "scaled read len",
            "scaled ref len",
        ],
        rows=rows,
        title="Table I — datasets (paper vs scaled reproduction)",
    )
    print("\n" + table)
    # Structural checks: four datasets, ordered by increasing data volume
    # (total sequenced bases), references present only for HC-2 and HC-X.
    assert len(rows) == 4
    total_bases = [row[4] * float(str(row[5]).split()[0]) for row in rows]
    assert total_bases[0] < total_bases[2] < total_bases[3]
    assert rows[0][6] != "-" and rows[1][6] != "-"
    assert rows[2][6] == "-" and rows[3][6] == "-"
