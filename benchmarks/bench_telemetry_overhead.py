"""Telemetry overhead benchmark: assembly with tracing+metrics off vs on.

The telemetry plane's contract is *zero-cost when disabled and cheap
when enabled*: the hot paths call module-level ``span()``/registry
accessors that dispatch to no-op singletons by default, and the real
``Tracer``/``MetricsRegistry`` only do O(1) work per superstep/stage.
This benchmark pins the "cheap when enabled" half with a number: it
runs the same full assembly (simulated reads, serial backend — no
fork-timing noise) with telemetry disabled and enabled, alternating
``ROUNDS`` times, compares the **min** wall-clock of each mode (min-of-N
discards scheduler noise, the usual microbenchmark practice), asserts
the relative overhead stays under :data:`MAX_OVERHEAD`, and writes
``BENCH_telemetry.json`` so CI can track the trajectory over time.

The enabled runs are also checked to have actually recorded telemetry
(spans produced, superstep counters populated) so a wiring regression
cannot silently turn this into a disabled-vs-disabled comparison.

Output location: the repository root by default, overridable with
``REPRO_BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.assembler import AssemblyConfig, PPAAssembler
from repro.bench import bench_report, bench_scale, format_table, prepare_dataset
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    use_registry,
    use_tracer,
)

DATASET = "hc2"
K = 21
NUM_WORKERS = 4

#: Alternating off/on repetitions; the minimum of each side is compared.
ROUNDS = 7

#: Acceptance ceiling for the enabled-telemetry slowdown.
MAX_OVERHEAD = 0.03


def _assemble(reads):
    config = AssemblyConfig(k=K, num_workers=NUM_WORKERS, backend="serial")
    return PPAAssembler(config).assemble(reads)


def _timed_assembly(reads) -> float:
    started = time.perf_counter()
    _assemble(reads)
    return time.perf_counter() - started


def _bench_overhead(reads) -> dict:
    _assemble(reads)  # warmup: page cache, NumPy init, allocator growth
    disabled, enabled = [], []
    spans = messages = 0
    for _ in range(ROUNDS):
        # Alternate the modes so drift (thermal, page cache, GC) hits
        # both sides equally instead of biasing whichever ran last.
        disabled.append(_timed_assembly(reads))

        tracer, registry = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            with tracer.span("bench-root") as root:
                started = time.perf_counter()
                _assemble(reads)
                elapsed = time.perf_counter() - started
        enabled.append(elapsed)
        spans = _span_count(root.to_dict())
        messages = sum(
            child.value
            for _, child in registry.counter(
                "repro_pregel_messages_total",
                "Pregel messages sent, total per job.",
                labelnames=("job",),
            ).series()
        )

    # A run that recorded nothing is measuring the wrong thing.
    assert spans > 1, "enabled run produced no spans: telemetry not wired"
    assert messages > 0, "enabled run recorded no Pregel messages"

    disabled_min, enabled_min = min(disabled), min(enabled)
    return {
        "rounds": ROUNDS,
        "disabled_seconds": round(disabled_min, 6),
        "enabled_seconds": round(enabled_min, 6),
        "overhead_fraction": round(enabled_min / disabled_min - 1.0, 6),
        "spans_per_run": spans,
        "pregel_messages_per_run": int(messages),
    }


def _span_count(tree) -> int:
    return 1 + sum(_span_count(child) for child in tree.get("children", ()))


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    return root / "BENCH_telemetry.json"


def test_telemetry_overhead(benchmark):
    scale = bench_scale()
    dataset = prepare_dataset(DATASET)

    results = benchmark.pedantic(
        _bench_overhead, args=(dataset.reads,), rounds=1, iterations=1
    )

    report = bench_report(
        benchmark="telemetry_overhead",
        dataset=DATASET,
        scale=scale,
        k=K,
        reads=len(dataset.reads),
        max_overhead=MAX_OVERHEAD,
        **results,
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Telemetry overhead: full assembly off vs on "
        f"({DATASET}, scale {scale}, k={K}, min of {ROUNDS})"
    )
    print(
        format_table(
            ["disabled s", "enabled s", "overhead", "spans", "messages"],
            [
                [
                    f"{results['disabled_seconds']:.3f}",
                    f"{results['enabled_seconds']:.3f}",
                    f"{results['overhead_fraction'] * 100:.2f}%",
                    results["spans_per_run"],
                    results["pregel_messages_per_run"],
                ]
            ],
        )
    )
    print(f"wrote {output}")

    assert results["overhead_fraction"] < MAX_OVERHEAD, (
        f"telemetry overhead {results['overhead_fraction'] * 100:.2f}% "
        f"exceeds the {MAX_OVERHEAD * 100:.0f}% ceiling"
    )
