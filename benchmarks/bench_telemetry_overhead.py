"""Telemetry overhead benchmark: assembly with telemetry off vs on.

The telemetry plane's contract is *zero-cost when disabled and cheap
when enabled*: the hot paths call module-level ``span()``/registry/
timeline accessors that dispatch to no-op singletons by default, and
the real instruments only do O(1) work per superstep/stage.  This
benchmark pins the "cheap when enabled" half with a number, across
three arms of the same full assembly (simulated reads, serial backend
— no fork-timing noise):

* **disabled** — all telemetry off (the baseline);
* **enabled** — tracer + metrics registry installed;
* **timeline** — tracer + metrics + a :class:`TimelineRecorder` fed by
  boundary events and a live :class:`ResourceSampler` thread.

The arms alternate round-robin so drift (thermal, page cache, GC) hits
all of them equally, and the gate compares the **median of per-round
paired ratios**: each round's arms run back-to-back under the same
machine state, so their ratio cancels drift that an unpaired
min-of-N (the previous scheme) turned into nonsense like negative
overhead.  Each arm's median is reported alongside for trend-watching.
Fractions are floored at 0.0: any measured "speedup" of an arm that
does strictly more work is noise by construction, and reporting it as
such keeps the regression gate's baseline meaningful.

The enabled runs are also checked to have actually recorded telemetry
(spans produced, superstep counters populated, timeline events
captured) so a wiring regression cannot silently turn this into a
disabled-vs-disabled comparison.

Output location: the repository root by default, overridable with
``REPRO_BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.assembler import AssemblyConfig, PPAAssembler
from repro.bench import bench_report, bench_scale, format_table, prepare_dataset
from repro.telemetry import (
    MetricsRegistry,
    ResourceSampler,
    TimelineRecorder,
    Tracer,
    use_registry,
    use_timeline,
    use_tracer,
)

DATASET = "hc2"
K = 21
NUM_WORKERS = 4

#: Round-robin repetitions per arm; each arm's median is compared.
ROUNDS = 7

#: Acceptance ceiling for each enabled arm's slowdown vs disabled.
MAX_OVERHEAD = 0.03


def _assemble(reads):
    config = AssemblyConfig(k=K, num_workers=NUM_WORKERS, backend="serial")
    return PPAAssembler(config).assemble(reads)


def _timed_assembly(reads) -> float:
    started = time.perf_counter()
    _assemble(reads)
    return time.perf_counter() - started


def _paired_overhead(baseline_rounds, measured_rounds) -> float:
    """Median of the per-round relative slowdowns, floored at zero.

    Pairing each round's arms (they ran back-to-back, sharing thermal
    and cache state) cancels between-round drift; the median discards
    outlier rounds; the zero floor acknowledges that an arm doing
    strictly more work cannot genuinely be faster.
    """
    ratios = [
        measured / baseline - 1.0
        for baseline, measured in zip(baseline_rounds, measured_rounds)
    ]
    return max(0.0, statistics.median(ratios))


def _bench_overhead(reads) -> dict:
    _assemble(reads)  # warmup: page cache, NumPy init, allocator growth
    disabled, enabled, timeline_arm = [], [], []
    spans = messages = timeline_events = 0
    for _ in range(ROUNDS):
        # Round-robin the arms so drift (thermal, page cache, GC) hits
        # every side equally instead of biasing whichever ran last.
        disabled.append(_timed_assembly(reads))

        tracer, registry = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            with tracer.span("bench-root") as root:
                enabled.append(_timed_assembly(reads))
        spans = _span_count(root.to_dict())
        messages = sum(
            child.value
            for _, child in registry.counter(
                "repro_pregel_messages_total",
                "Pregel messages sent, total per job.",
                labelnames=("job",),
            ).series()
        )

        tracer, registry = Tracer(), MetricsRegistry()
        recorder = TimelineRecorder()
        with use_tracer(tracer), use_registry(registry), use_timeline(recorder):
            with tracer.span("bench-root"):
                sampler = ResourceSampler(recorder, source="bench").start()
                try:
                    timeline_arm.append(_timed_assembly(reads))
                finally:
                    sampler.stop()
        timeline_events = len(recorder)

    # A run that recorded nothing is measuring the wrong thing.
    assert spans > 1, "enabled run produced no spans: telemetry not wired"
    assert messages > 0, "enabled run recorded no Pregel messages"
    assert timeline_events > 0, "timeline run captured no events: not wired"

    return {
        "rounds": ROUNDS,
        "disabled_seconds": round(statistics.median(disabled), 6),
        "enabled_seconds": round(statistics.median(enabled), 6),
        "timeline_seconds": round(statistics.median(timeline_arm), 6),
        "overhead_fraction": round(_paired_overhead(disabled, enabled), 6),
        "timeline_overhead_fraction": round(
            _paired_overhead(disabled, timeline_arm), 6
        ),
        "spans_per_run": spans,
        "pregel_messages_per_run": int(messages),
        "timeline_events_per_run": timeline_events,
    }


def _span_count(tree) -> int:
    return 1 + sum(_span_count(child) for child in tree.get("children", ()))


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    root.mkdir(parents=True, exist_ok=True)
    return root / "BENCH_telemetry.json"


def test_telemetry_overhead(benchmark):
    scale = bench_scale()
    dataset = prepare_dataset(DATASET)

    results = benchmark.pedantic(
        _bench_overhead, args=(dataset.reads,), rounds=1, iterations=1
    )

    report = bench_report(
        benchmark="telemetry_overhead",
        dataset=DATASET,
        scale=scale,
        k=K,
        reads=len(dataset.reads),
        max_overhead=MAX_OVERHEAD,
        **results,
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Telemetry overhead: full assembly off vs on vs on+timeline "
        f"({DATASET}, scale {scale}, k={K}, median of {ROUNDS})"
    )
    print(
        format_table(
            ["disabled s", "enabled s", "timeline s", "overhead", "tl overhead"],
            [
                [
                    f"{results['disabled_seconds']:.3f}",
                    f"{results['enabled_seconds']:.3f}",
                    f"{results['timeline_seconds']:.3f}",
                    f"{results['overhead_fraction'] * 100:.2f}%",
                    f"{results['timeline_overhead_fraction'] * 100:.2f}%",
                ]
            ],
        )
    )
    print(f"wrote {output}")

    assert results["overhead_fraction"] < MAX_OVERHEAD, (
        f"telemetry overhead {results['overhead_fraction'] * 100:.2f}% "
        f"exceeds the {MAX_OVERHEAD * 100:.0f}% ceiling"
    )
    assert results["timeline_overhead_fraction"] < MAX_OVERHEAD, (
        f"timeline+sampler overhead "
        f"{results['timeline_overhead_fraction'] * 100:.2f}% "
        f"exceeds the {MAX_OVERHEAD * 100:.0f}% ceiling"
    )
