"""K-mer pipeline microbenchmark: scalar oracle vs NumPy batch kernels.

Times the DBG-construction hot path stage by stage — canonical
(k+1)-mer extraction, count pre-aggregation, and the full operation ①
— with ``use_vectorized`` off and on, asserts the results stay
bit-identical, and writes ``BENCH_kmer_pipeline.json`` so CI can track
the speedup trajectory over time.

Output location: the repository root by default, overridable with
``REPRO_BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict
from pathlib import Path

from repro.assembler import AssemblyConfig
from repro.assembler.construction import build_dbg
from repro.bench import BENCH_K, bench_report, bench_scale, format_table, prepare_dataset
from repro.dna import vectorized
from repro.dna.encoding import canonical_encoded, iter_encoded_kmers
from repro.dna.sequence import split_on_ambiguous
from repro.workflow import StageExecutor

DATASET = "hc2"
NUM_WORKERS = 4

#: The acceptance floor for the headline stage (full operation ①):
#: the vectorized path must be at least this much faster.
MIN_CONSTRUCTION_SPEEDUP = 3.0


def _timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def _scalar_extract(sequences, window):
    ids = []
    for sequence in sequences:
        for fragment in split_on_ambiguous(sequence):
            if len(fragment) < window:
                continue
            for encoded in iter_encoded_kmers(fragment, window):
                ids.append(canonical_encoded(encoded, window)[0])
    return ids


def _scalar_count(ids):
    counts = defaultdict(int)
    for encoded in ids:
        counts[encoded] += 1
    return counts


def _vectorized_count(ids_array):
    import numpy as np

    return np.unique(ids_array, return_counts=True)


def _bench_stages(sequences, reads):
    import numpy as np

    window = BENCH_K + 1
    stages = {}

    scalar_ids, scalar_seconds = _timed(lambda: _scalar_extract(sequences, window))
    (vector_ids, _counts), vector_seconds = _timed(
        lambda: vectorized.extract_canonical_window_ids(sequences, window)
    )
    assert vector_ids.tolist() == scalar_ids, "extraction parity violated"
    stages["extract-canonical-edges"] = (scalar_seconds, vector_seconds)

    scalar_counts, scalar_seconds = _timed(lambda: _scalar_count(scalar_ids))
    (unique_ids, unique_counts), vector_seconds = _timed(
        lambda: _vectorized_count(vector_ids)
    )
    assert dict(zip(unique_ids.tolist(), unique_counts.tolist())) == dict(scalar_counts)
    stages["preaggregate-counts"] = (scalar_seconds, vector_seconds)

    def run_construction(use_vectorized):
        chain = StageExecutor(num_workers=NUM_WORKERS, columnar_messages=use_vectorized)
        config = AssemblyConfig(k=BENCH_K, use_vectorized=use_vectorized)
        return build_dbg(reads, config, chain), chain

    (scalar_result, scalar_chain), scalar_seconds = _timed(
        lambda: run_construction(False)
    )
    (vector_result, vector_chain), vector_seconds = _timed(
        lambda: run_construction(True)
    )
    assert list(vector_result.graph.kmers) == list(scalar_result.graph.kmers)
    assert vector_result.graph.kmers == scalar_result.graph.kmers
    assert vector_chain.pipeline_metrics == scalar_chain.pipeline_metrics
    stages["dbg-construction"] = (scalar_seconds, vector_seconds)

    return stages


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    root.mkdir(parents=True, exist_ok=True)
    return root / "BENCH_kmer_pipeline.json"


def test_kmer_pipeline_speedup(benchmark):
    if not vectorized.numpy_available():  # pragma: no cover - numpy baked in
        import pytest

        pytest.skip("NumPy unavailable; vectorized path disabled")

    scale = bench_scale()
    dataset = prepare_dataset(DATASET)
    sequences = [read.sequence for read in dataset.reads]

    stages = benchmark.pedantic(
        _bench_stages, args=(sequences, dataset.reads), rounds=1, iterations=1
    )

    report = bench_report(
        benchmark="kmer_pipeline",
        dataset=DATASET,
        scale=scale,
        k=BENCH_K,
        reads=len(sequences),
        stages={
            name: {
                "scalar_seconds": round(scalar_seconds, 6),
                "vectorized_seconds": round(vector_seconds, 6),
                "speedup": round(scalar_seconds / vector_seconds, 2),
            }
            for name, (scalar_seconds, vector_seconds) in stages.items()
        },
    )
    report["headline_speedup"] = report["stages"]["dbg-construction"]["speedup"]
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"K-mer pipeline: scalar vs vectorized ({DATASET}, scale {scale}, k={BENCH_K})")
    print(
        format_table(
            ["stage", "scalar s", "vectorized s", "speedup"],
            [
                [
                    name,
                    f"{scalar_seconds:.3f}",
                    f"{vector_seconds:.3f}",
                    f"{scalar_seconds / vector_seconds:.1f}x",
                ]
                for name, (scalar_seconds, vector_seconds) in stages.items()
            ],
        )
    )
    print(f"wrote {output}")

    headline = report["headline_speedup"]
    assert headline >= MIN_CONSTRUCTION_SPEEDUP, (
        f"expected >= {MIN_CONSTRUCTION_SPEEDUP:.0f}x DBG-construction speedup, "
        f"got {headline:.2f}x"
    )
