"""Ablation — the effect of the second labeling/merging round.

Section V notes that the second round of contig merging (after error
correction) roughly doubles N50 on HC-2 ("N50 is 1074 after we merge
unambiguous k-mers into contigs, and it improves to 2070").  This
ablation runs the pipeline with ``error_correction_rounds`` set to 0
and 1 and compares the resulting contiguity.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.assembler import PPAAssembler
from repro.bench import BENCH_MIN_CONTIG, format_table, ppa_config, prepare_dataset
from repro.quality import contig_statistics

_SCALE = 0.5
_WORKERS = 16


def _run_both(scale_multiplier: float):
    dataset = prepare_dataset("hc2", scale=_SCALE * scale_multiplier)
    config = ppa_config(num_workers=_WORKERS)
    without_second = replace(config, error_correction_rounds=0)
    with_second = replace(config, error_correction_rounds=1)
    first = PPAAssembler(without_second).assemble(dataset.reads)
    second = PPAAssembler(with_second).assemble(dataset.reads)
    return {
        "first-round only (①②③)": contig_statistics(first.contigs, BENCH_MIN_CONTIG),
        "with error correction (①②③④⑤⑥②③)": contig_statistics(second.contigs, BENCH_MIN_CONTIG),
    }


def test_ablation_second_round_improves_contiguity(benchmark, scale_multiplier):
    stats = benchmark.pedantic(_run_both, args=(scale_multiplier,), rounds=1, iterations=1)
    rows = [
        [name, s.num_contigs, s.total_length, s.n50, s.largest_contig]
        for name, s in stats.items()
    ]
    print(
        "\n"
        + format_table(
            headers=["Workflow", "# contigs", "Total length", "N50", "Largest contig"],
            rows=rows,
            title="Ablation — contiguity before/after the second merging round",
        )
    )
    first = stats["first-round only (①②③)"]
    second = stats["with error correction (①②③④⑤⑥②③)"]
    assert second.n50 >= first.n50
    assert second.num_contigs <= first.num_contigs
    assert second.largest_contig >= first.largest_contig
