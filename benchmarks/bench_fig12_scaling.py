"""Figure 12 — end-to-end execution time versus number of workers.

The paper runs the four assemblers on HC-14 and Bombus Impatiens with
16, 32, 48 and 64 workers and reports end-to-end execution time.  The
expected shape (paper, HC-14): PPA-assembler is the fastest at every
worker count and keeps improving with more workers; SWAP-Assembler is
second and also scales; ABySS is insensitive to the worker count; Ray
is roughly an order of magnitude slower than everything else.

This benchmark reproduces the *shape* on scaled datasets: PPA-assembler
times come from the BSP cost model applied to the measured per-worker
load of every Pregel/mini-MapReduce job; the baselines use their
documented per-strategy cost formulas.  Absolute seconds are not
comparable with the paper's cluster.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    FIGURE12_WORKERS,
    bench_cluster_profile,
    format_scaling_series,
    prepare_dataset,
    run_baselines,
    run_ppa,
)

_DATASET_SCALES = {"hc14": 0.2, "bi": 0.12}


def _scaling_series(dataset_name: str, scale: float):
    dataset = prepare_dataset(dataset_name, scale=scale)
    cluster = bench_cluster_profile()
    series = {"PPA-Assembler": {}, "ABySS": {}, "Ray": {}, "SWAP-Assembler": {}}
    for workers in FIGURE12_WORKERS:
        ppa = run_ppa(dataset, num_workers=workers)
        series["PPA-Assembler"][workers] = ppa.estimated_seconds(cluster)
        for name, result in run_baselines(dataset, num_workers=workers).items():
            series[name][workers] = result.estimated_seconds
    return series


def _check_shape(series):
    ppa = series["PPA-Assembler"]
    abyss = series["ABySS"]
    ray = series["Ray"]
    swap = series["SWAP-Assembler"]
    workers_low, workers_high = min(FIGURE12_WORKERS), max(FIGURE12_WORKERS)

    # PPA-assembler is the fastest assembler at every worker count.
    for workers in FIGURE12_WORKERS:
        others = (abyss[workers], ray[workers], swap[workers])
        assert ppa[workers] < min(others)
    # PPA-assembler and SWAP improve with more workers.
    assert ppa[workers_high] < ppa[workers_low]
    assert swap[workers_high] < swap[workers_low]
    # ABySS is insensitive to the worker count (within 30%).
    assert 0.7 < abyss[workers_high] / abyss[workers_low] < 1.3
    # Ray is the slowest at every worker count.
    for workers in FIGURE12_WORKERS:
        assert ray[workers] > max(ppa[workers], abyss[workers], swap[workers])


@pytest.mark.parametrize("dataset_name,figure", [("hc14", "12(a)"), ("bi", "12(b)")])
def test_figure12_worker_scaling(benchmark, scale_multiplier, dataset_name, figure):
    scale = _DATASET_SCALES[dataset_name] * scale_multiplier
    series = benchmark.pedantic(
        _scaling_series, args=(dataset_name, scale), rounds=1, iterations=1
    )
    print(
        "\n"
        + format_scaling_series(
            series,
            title=(
                f"Figure {figure} — estimated execution time on {dataset_name.upper()} "
                "(simulated cluster seconds)"
            ),
        )
    )
    _check_shape(series)
