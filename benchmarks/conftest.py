"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on the
scaled-down synthetic datasets (see DESIGN.md for the substitution
rationale and EXPERIMENTS.md for paper-vs-measured numbers).  The
benchmarks print their table in the paper's layout; pytest-benchmark
additionally records the wall-clock time of the headline operation.

Dataset sizes can be grown or shrunk with ``REPRO_BENCH_SCALE`` (a
multiplier on the per-benchmark default scales).
"""

from __future__ import annotations

import os

import pytest


def pytest_configure(config):
    # Make sure benchmark output is visible even under -q.
    config.option.verbose = max(config.option.verbose, 0)


@pytest.fixture(scope="session")
def scale_multiplier() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        value = 1.0
    return value if value > 0 else 1.0
