"""Scaffolding benchmark: contig vs scaffold contiguity on paired-end data.

Assembles a paired-end simulation of the HC-2 profile (the reference is
published, so NG50 is computable), runs the scaffolding stage, and
records how much contiguity the stage recovers — the contig-vs-scaffold
N50/NG50 comparison every scaffolder paper leads with.  Writes
``BENCH_scaffolding.json`` (shared envelope, see
:mod:`repro.bench.schema`) so CI can track the trajectory.

The dataset is deliberately *fragmented*: the profile's repeat fraction
breaks the assembly into dozens of contigs, and the insert size is
chosen well above the repeat length so read pairs can bridge the
breaks.

Output location: the repository root by default, overridable with
``REPRO_BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench import (
    BENCH_K,
    bench_report,
    bench_scale,
    format_table,
    prepare_paired_dataset,
    run_ppa_scaffolded,
    scaffold_metrics,
)

DATASET = "hc2"
NUM_WORKERS = 4
INSERT_SIZE_MEAN = 600.0
INSERT_SIZE_STD = 60.0


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    root.mkdir(parents=True, exist_ok=True)
    return root / "BENCH_scaffolding.json"


def test_scaffolding_contiguity(benchmark):
    scale = bench_scale()
    dataset = prepare_paired_dataset(
        DATASET,
        insert_size_mean=INSERT_SIZE_MEAN,
        insert_size_std=INSERT_SIZE_STD,
    )

    result = benchmark.pedantic(
        lambda: run_ppa_scaffolded(dataset, num_workers=NUM_WORKERS),
        rounds=1,
        iterations=1,
    )
    scaffolding = result.scaffolding
    assert scaffolding is not None

    contig_lengths = [len(sequence) for sequence in result.contigs]
    scaffold_lengths = [len(sequence) for sequence in result.scaffolds]
    metrics = scaffold_metrics(
        contig_lengths,
        scaffold_lengths,
        reference_length=dataset.profile.genome_length,
    )

    report = bench_report(
        benchmark="scaffolding",
        dataset=DATASET,
        scale=scale,
        k=BENCH_K,
        pairs=scaffolding.num_pairs,
        pairs_mapped=scaffolding.num_pairs_mapped,
        links_selected=scaffolding.num_links_selected,
        links_used=scaffolding.num_links_used,
        insert_size_configured=INSERT_SIZE_MEAN,
        insert_size_estimated=round(scaffolding.insert_size, 1),
        **metrics,
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Scaffolding: contigs vs scaffolds ({DATASET}, scale {scale}, "
        f"k={BENCH_K}, insert {INSERT_SIZE_MEAN:.0f}±{INSERT_SIZE_STD:.0f})"
    )
    print(
        format_table(
            ["metric", "contigs", "scaffolds"],
            [
                ["count", metrics["num_contigs"], metrics["num_scaffolds"]],
                ["total bp", metrics["contig_total_bp"], metrics["scaffold_total_bp"]],
                ["N50", metrics["contig_n50"], metrics["scaffold_n50"]],
                ["NG50", metrics["contig_ng50"], metrics["scaffold_ng50"]],
                ["largest", metrics["largest_contig"], metrics["largest_scaffold"]],
            ],
        )
    )
    print(
        f"pairs mapped: {scaffolding.num_pairs_mapped}/{scaffolding.num_pairs}, "
        f"links used: {scaffolding.num_links_used}, "
        f"estimated insert: {scaffolding.insert_size:.0f}"
    )
    print(f"wrote {output}")

    # The acceptance property of the stage: joining whole contigs can
    # only improve contiguity.  (Strict N50 improvement depends on
    # *which* contigs join, so the seed-pinned tests under
    # tests/scaffold/ assert it; here every link must at least reduce
    # the scaffold count regardless of scale.)
    assert metrics["scaffold_n50"] >= metrics["contig_n50"]
    if scaffolding.num_links_selected > 0:
        assert metrics["num_scaffolds"] < metrics["num_contigs"]
