"""Ablation — simplified S-V vs the original S-V (star hooking).

Section II argues that the star-hooking step of the original
Shiloach-Vishkin algorithm is unnecessary in the Pregel setting and
that removing it ("simplified S-V") saves the expensive star test.
This ablation runs both variants on connected-components inputs shaped
like the labeling workloads (long paths plus random graphs) and
compares supersteps, messages and estimated runtime; Hash-Min is
included as the non-PPA baseline to show why neither labeling method
uses it (its superstep count grows with the graph diameter).
"""

from __future__ import annotations

import random

import pytest

from repro.bench import bench_cluster_profile, format_table
from repro.ppa import (
    GraphInput,
    run_hash_min,
    run_original_sv,
    run_simplified_sv,
    sequential_connected_components,
    components_from_result,
    hash_min_components,
)
from repro.pregel.cost_model import CostModel


def _workloads():
    rng = random.Random(99)
    path = GraphInput.from_edges([(i, i + 1) for i in range(2_000)])
    random_graph = GraphInput.from_edges(
        [(rng.randrange(3_000), rng.randrange(3_000)) for _ in range(4_000)]
    ).add_isolated(range(3_000))
    return {"path (2k vertices)": path, "random (3k vertices)": random_graph}


def _measure(scale_multiplier: float):
    model = CostModel(bench_cluster_profile())
    rows = []
    checks = []
    for name, graph in _workloads().items():
        expected = sequential_connected_components(graph)
        simplified = run_simplified_sv(graph, num_workers=16)
        original = run_original_sv(graph, num_workers=16)
        hashmin = run_hash_min(graph, num_workers=16)
        checks.append(components_from_result(simplified) == expected)
        checks.append(components_from_result(original) == expected)
        checks.append(hash_min_components(hashmin) == expected)
        rows.append(
            [
                name,
                simplified.num_supersteps,
                original.num_supersteps,
                hashmin.num_supersteps,
                simplified.total_messages,
                original.total_messages,
                f"{model.job_seconds(simplified.metrics):.1f}",
                f"{model.job_seconds(original.metrics):.1f}",
            ]
        )
    return rows, checks


def test_ablation_simplified_vs_original_sv(benchmark, scale_multiplier):
    rows, checks = benchmark.pedantic(_measure, args=(scale_multiplier,), rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            headers=[
                "Workload",
                "simplified supersteps",
                "original supersteps",
                "hash-min supersteps",
                "simplified messages",
                "original messages",
                "simplified runtime (s)",
                "original runtime (s)",
            ],
            rows=rows,
            title="Ablation — simplified S-V vs original S-V vs Hash-Min",
        )
    )
    assert all(checks), "all three algorithms must produce correct components"
    for row in rows:
        _name, simplified_steps, original_steps, _hm, simplified_messages, original_messages, *_ = row
        assert simplified_steps < original_steps
        assert simplified_messages <= original_messages
