"""Table V — sequencing quality comparison on HC-14 (no reference).

HC-14 has no published reference sequence, so the paper reports only
the reference-free metrics: number of contigs, total length, N50 and
largest contig.  Expected shape: PPA-assembler has the highest N50 and
largest contig; total length and contig counts are comparable across
assemblers.
"""

from __future__ import annotations

import pytest

from repro.bench import BENCH_MIN_CONTIG, format_comparison, prepare_dataset
from repro.bench.harness import all_assembler_contigs
from repro.quality import compare_assemblies

_SCALE = 0.25
_WORKERS = 16

_METRIC_ROWS = ["num_contigs", "total_length", "n50", "largest_contig"]


def _quality_reports(scale_multiplier: float):
    dataset = prepare_dataset("hc14", scale=_SCALE * scale_multiplier)
    assert dataset.reference is None  # Table V is reference-free by design
    contigs_per_assembler = all_assembler_contigs(dataset, num_workers=_WORKERS)
    reports = compare_assemblies(
        contigs_per_assembler,
        reference=None,
        min_contig_length=BENCH_MIN_CONTIG,
    )
    return {report.assembler: report.as_dict() for report in reports}


def test_table5_quality_comparison_on_hc14(benchmark, scale_multiplier):
    per_assembler = benchmark.pedantic(
        _quality_reports, args=(scale_multiplier,), rounds=1, iterations=1
    )
    print(
        "\n"
        + format_comparison(
            _METRIC_ROWS,
            per_assembler,
            title=(
                "Table V — quality comparison on HC-14 "
                f"(reference-free, contigs ≥ {BENCH_MIN_CONTIG} bp)"
            ),
        )
    )
    ppa = per_assembler["PPA"]
    for report in per_assembler.values():
        assert report["num_contigs"] > 0
        # Reference-based fields must be absent without a reference.
        assert "genome_fraction" not in report
    assert ppa["n50"] >= per_assembler["ABySS"]["n50"]
    assert ppa["n50"] >= per_assembler["SWAP-Assembler"]["n50"]
    assert ppa["largest_contig"] >= per_assembler["ABySS"]["largest_contig"]
