"""Out-of-core memory plane — peak RSS and wall-clock under a budget.

Assembles the same dataset at budgets {unlimited, 1/2, 1/4 of the
measured working set}, each in a fresh Python subprocess so
``ru_maxrss`` reflects that run alone.  The working set is measured
first with an effectively-infinite budget: the spill plane then
accounts every partition, inbox, staged batch and ingest run without
ever evicting, and its ledger peak *is* the budgeted working set.

Asserted always: every budget produces bit-identical contigs (compared
by hash across the subprocess boundary), and the quarter-budget run
actually spills.  Asserted only when the working set is large enough
for the Python heap to dominate the interpreter baseline
(``MIN_WS_BYTES_FOR_RSS_ASSERT``): quarter-budget peak RSS lands
materially below the unlimited run's.  The JSON records
``rss_asserted`` so downstream tooling knows whether the RSS numbers
carry a signal — at the default CI scale they are interpreter noise.

Results land in ``BENCH_out_of_core.json`` (shared schema-v2 envelope,
see :mod:`repro.bench.schema`) with one row per budget: peak RSS,
wall-clock seconds, spill/load totals, ledger peak, and the contig
hash.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.bench import format_table
from repro.bench.harness import BENCH_K, bench_scale
from repro.bench.schema import bench_report

DATASET = "hc2"
NUM_WORKERS = 4

#: Budget (MB) used for the working-set measurement run: large enough
#: to never spill, so the ledger peak equals the full tracked set.
UNLIMITED_PROBE_MB = 1 << 20

#: Only assert an RSS reduction when the tracked working set dominates
#: the interpreter+numpy baseline; below this the comparison is noise.
MIN_WS_BYTES_FOR_RSS_ASSERT = 128 * 1024 * 1024

#: One assembly run, executed via ``python -c`` in a fresh process.
#: Prints a single JSON object on the last line of stdout.
_CHILD_SCRIPT = """
import hashlib, json, resource, sys, time
from repro.assembler import PPAAssembler
from repro.bench.harness import ppa_config, prepare_dataset
from repro.store.spill import process_spill_stats

dataset_name, scale, budget_mb, num_workers = json.loads(sys.argv[1])
dataset = prepare_dataset(dataset_name, scale=scale)
config = ppa_config(num_workers=num_workers)
if budget_mb is not None:
    config = config.with_memory_budget(budget_mb)

before = process_spill_stats().snapshot()
started = time.perf_counter()
result = PPAAssembler(config).assemble(dataset.reads)
seconds = time.perf_counter() - started
spill = process_spill_stats().delta_since(before)

digest = hashlib.sha256("\\n".join(sorted(result.contigs)).encode()).hexdigest()
print(json.dumps({
    "seconds": seconds,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "contig_hash": digest,
    "num_contigs": len(result.contigs),
    "spill_events": spill["spill_events"],
    "spill_bytes": spill["spill_bytes"],
    "load_events": spill["load_events"],
    "ledger_peak_bytes": spill["ledger_peak_bytes"],
}))
"""


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUTPUT_DIR")
    root = Path(override) if override else Path(__file__).resolve().parents[1]
    root.mkdir(parents=True, exist_ok=True)
    return root / "BENCH_out_of_core.json"


def _run_child(scale: float, budget_mb):
    """Assemble in a fresh interpreter; returns the child's JSON row."""
    args = json.dumps([DATASET, scale, budget_mb, NUM_WORKERS])
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, args],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _measure(scale: float):
    # Working-set probe: account everything, evict nothing.
    probe = _run_child(scale, UNLIMITED_PROBE_MB)
    ws_bytes = probe["ledger_peak_bytes"]
    assert ws_bytes > 0, "the probe run tracked nothing"

    half_mb = max(0.01, ws_bytes / 2 / (1024 * 1024))
    quarter_mb = max(0.01, ws_bytes / 4 / (1024 * 1024))

    rows = []
    for label, budget_mb in (
        ("unlimited", None),
        ("half_ws", half_mb),
        ("quarter_ws", quarter_mb),
    ):
        child = _run_child(scale, budget_mb)
        rows.append(
            {
                "budget": label,
                "budget_mb": None if budget_mb is None else round(budget_mb, 3),
                "seconds": round(child["seconds"], 3),
                "peak_rss_kb": child["peak_rss_kb"],
                "num_contigs": child["num_contigs"],
                "contig_hash": child["contig_hash"],
                "spill_events": child["spill_events"],
                "spill_bytes": child["spill_bytes"],
                "load_events": child["load_events"],
                "ledger_peak_bytes": child["ledger_peak_bytes"],
            }
        )

    # Bit-identity across budgets is non-negotiable.
    hashes = {row["contig_hash"] for row in rows}
    assert len(hashes) == 1, f"contigs diverged across budgets: {rows}"
    quarter = rows[-1]
    assert quarter["spill_events"] > 0, "quarter-working-set budget never spilled"
    return rows, ws_bytes


def test_out_of_core_memory_bound(benchmark, scale_multiplier):
    scale = 0.25 * scale_multiplier
    rows, ws_bytes = benchmark.pedantic(
        _measure, args=(scale,), rounds=1, iterations=1
    )
    rss_asserted = ws_bytes >= MIN_WS_BYTES_FOR_RSS_ASSERT

    report = bench_report(
        benchmark="out_of_core",
        dataset=DATASET,
        scale=scale,
        k=BENCH_K,
        num_workers=NUM_WORKERS,
        working_set_bytes=ws_bytes,
        rss_asserted=rss_asserted,
        rows=rows,
    )
    output = _output_path()
    output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"Out-of-core matrix (working set {ws_bytes / 1e6:.1f} MB) -> {output.name}"
    )
    print(
        format_table(
            ["budget", "MB", "s", "peak RSS MB", "spills", "spilled MB"],
            [
                [
                    row["budget"],
                    "-" if row["budget_mb"] is None else f"{row['budget_mb']:.2f}",
                    f"{row['seconds']:.2f}",
                    f"{row['peak_rss_kb'] / 1024:.1f}",
                    str(row["spill_events"]),
                    f"{row['spill_bytes'] / 1e6:.2f}",
                ]
                for row in rows
            ],
        )
    )
    if rss_asserted:
        unlimited_rss = rows[0]["peak_rss_kb"]
        quarter_rss = rows[-1]["peak_rss_kb"]
        assert quarter_rss < unlimited_rss, (
            f"expected the quarter-budget run ({quarter_rss} kB) to stay below "
            f"the unlimited run ({unlimited_rss} kB)"
        )
    else:
        print(
            f"RSS assertion skipped (working set {ws_bytes / 1e6:.1f} MB below "
            f"{MIN_WS_BYTES_FOR_RSS_ASSERT / 1e6:.0f} MB floor); "
            "bit-identity and spill activity still asserted"
        )
