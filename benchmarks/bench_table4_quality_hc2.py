"""Table IV — sequencing quality comparison on HC-2 (reference available).

The paper evaluates all four assemblers with QUAST on the HC-2 dataset
(which has a reference sequence) and reports twelve metrics.  The
expected shape: PPA-assembler has the highest N50 and largest
contig/alignment, the fewest misassemblies and mismatches, and the
highest genome fraction; ABySS is more fragmented (lower N50, more
mismatches); SWAP is the most fragmented with the smallest total
length; Ray covers the smallest fraction of the genome in the paper and
is at best comparable here.
"""

from __future__ import annotations

import pytest

from repro.bench import BENCH_K, BENCH_MIN_CONTIG, format_comparison, prepare_dataset
from repro.bench.harness import all_assembler_contigs
from repro.quality import compare_assemblies

_SCALE = 0.5
_WORKERS = 16

_METRIC_ROWS = [
    "num_contigs",
    "total_length",
    "n50",
    "largest_contig",
    "gc_percent",
    "misassemblies",
    "misassembled_length",
    "unaligned_length",
    "genome_fraction",
    "mismatches_per_100kbp",
    "indels_per_100kbp",
    "largest_alignment",
]


def _quality_reports(scale_multiplier: float):
    dataset = prepare_dataset("hc2", scale=_SCALE * scale_multiplier)
    contigs_per_assembler = all_assembler_contigs(dataset, num_workers=_WORKERS)
    reference, _ = dataset.profile.generate_with_reference()
    reports = compare_assemblies(
        contigs_per_assembler,
        reference=reference,
        min_contig_length=BENCH_MIN_CONTIG,
        anchor_k=BENCH_K,
    )
    return {report.assembler: report.as_dict() for report in reports}


def test_table4_quality_comparison_on_hc2(benchmark, scale_multiplier):
    per_assembler = benchmark.pedantic(
        _quality_reports, args=(scale_multiplier,), rounds=1, iterations=1
    )
    print(
        "\n"
        + format_comparison(
            _METRIC_ROWS,
            per_assembler,
            title=(
                "Table IV — quality comparison on HC-2 "
                f"(contigs ≥ {BENCH_MIN_CONTIG} bp, scaled dataset)"
            ),
        )
    )
    ppa = per_assembler["PPA"]
    abyss = per_assembler["ABySS"]
    swap = per_assembler["SWAP-Assembler"]
    ray = per_assembler["Ray"]

    # Everyone assembled something.
    for report in per_assembler.values():
        assert report["num_contigs"] > 0

    # Headline shape checks from the paper.
    assert ppa["n50"] >= abyss["n50"]
    assert ppa["n50"] >= swap["n50"]
    assert ppa["largest_contig"] >= abyss["largest_contig"]
    assert ppa["misassemblies"] <= min(r["misassemblies"] for r in (abyss, swap, ray))
    assert ppa["genome_fraction"] >= 0.9 * max(r["genome_fraction"] for r in (abyss, swap, ray))
    assert ppa["mismatches_per_100kbp"] <= abyss["mismatches_per_100kbp"] + 50
