"""Table III — bidirectional list ranking vs simplified S-V for labeling contigs.

Same comparison as Table II, but for the *second* ② operation of the
workflow: after error correction, contigs and the remaining k-mers are
relabelled so contigs can grow further.  The paper highlights that the
message counts and runtimes here are about three orders of magnitude
smaller than in Table II, because merging collapsed tens of millions of
k-mer vertices into a few contig vertices; list ranking still beats S-V
on every measure.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_cluster_profile, format_table, ppa_config, prepare_dataset
from repro.pregel.cost_model import CostModel
from repro.assembler import PPAAssembler

_DATASET_SCALES = {"hc2": 0.25, "hcx": 0.25, "hc14": 0.2, "bi": 0.12}
_WORKERS = 16


def _measure_second_labeling(dataset_name: str, scale: float, method: str):
    dataset = prepare_dataset(dataset_name, scale=scale)
    config = ppa_config(num_workers=_WORKERS, labeling_method=method)
    result = PPAAssembler(config).assemble(dataset.reads)
    jobs = result.labeling_metrics["contigs"]
    model = CostModel(bench_cluster_profile())
    return {
        "supersteps": sum(job.num_supersteps for job in jobs),
        "messages": sum(job.total_messages for job in jobs),
        "seconds": sum(model.job_seconds(job) for job in jobs),
        "first_round_messages": sum(
            job.total_messages for job in result.labeling_metrics["kmers"]
        ),
    }


def _table3_rows(scale_multiplier: float):
    rows = []
    for dataset_name, base_scale in _DATASET_SCALES.items():
        scale = base_scale * scale_multiplier
        lr = _measure_second_labeling(dataset_name, scale, "list_ranking")
        sv = _measure_second_labeling(dataset_name, scale, "sv")
        rows.append(
            [
                dataset_name.upper(),
                lr["supersteps"],
                sv["supersteps"],
                lr["messages"],
                sv["messages"],
                f"{lr['seconds']:.2f}",
                f"{sv['seconds']:.2f}",
                lr["first_round_messages"],
            ]
        )
    return rows


def test_table3_lr_vs_sv_for_contigs(benchmark, scale_multiplier):
    rows = benchmark.pedantic(_table3_rows, args=(scale_multiplier,), rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            headers=[
                "Dataset",
                "LR supersteps",
                "S-V supersteps",
                "LR messages",
                "S-V messages",
                "LR runtime (s)",
                "S-V runtime (s)",
                "(Table II messages)",
            ],
            rows=rows,
            title="Table III — LR vs S-V for labeling contigs (second round)",
        )
    )
    for row in rows:
        _dataset, lr_steps, sv_steps, lr_messages, sv_messages, _lr_s, _sv_s, first_round = row
        assert lr_steps <= sv_steps
        assert lr_messages <= sv_messages
        # The paper's observation: the contig round moves vastly fewer
        # messages than the k-mer round (orders of magnitude).
        assert lr_messages < first_round / 10
