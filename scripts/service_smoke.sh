#!/usr/bin/env bash
# Job-service smoke: serve → submit → poll → kill -9 mid-assembly →
# restart → assert the job resumes and its contigs are byte-identical
# to an uninterrupted one-shot run.  This is the shell replay of
# tests/service/test_crash_recovery.py, run by CI as a black-box check
# of the installed entry point.
#
# Environment:
#   REPRO_ASSEMBLE  command to invoke (default: repro-assemble on PATH;
#                   use "python -m repro.cli" with PYTHONPATH=src)
#   SMOKE_PORT      TCP port for the service (default 8650)
set -euo pipefail

ASSEMBLE=(${REPRO_ASSEMBLE:-repro-assemble})
PORT="${SMOKE_PORT:-8650}"
URL="http://127.0.0.1:$PORT"
DATA_DIR="$(mktemp -d)"
GENOME=24000
SEED=13
K=17
SERVER_PID=""

cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$DATA_DIR"
}
trap cleanup EXIT

start_server() {
    # Short lease + fast reaper: after a kill -9 the orphaned worker
    # process fences itself out within a heartbeat tick (lease/3) and
    # the restarted server reclaims the job in ~2s instead of 15.
    "${ASSEMBLE[@]}" serve --data-dir "$DATA_DIR/service" --port "$PORT" \
        --workers 1 --poll-interval 0.05 --lease-seconds 2 --reap-interval 0.2 &
    SERVER_PID=$!
    for _ in $(seq 1 200); do
        if curl -fsS "$URL/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "service_smoke: server did not come up" >&2
    exit 1
}

job_field() {  # job_field <id> <python expr over doc>
    curl -fsS "$URL/jobs/$1" | python -c "import json,sys; doc=json.load(sys.stdin); print($2)"
}

echo "== reference: uninterrupted one-shot run =="
"${ASSEMBLE[@]}" --simulate "$GENOME" --seed "$SEED" -k "$K" --workers 2 \
    --quiet --output "$DATA_DIR/reference.fa"

echo "== start service =="
start_server

echo "== submit =="
JOB=$(curl -fsS -X POST "$URL/jobs" -H 'Content-Type: application/json' \
    -d "{\"input\": {\"mode\": \"simulate\", \"genome_length\": $GENOME, \"seed\": $SEED},
         \"config\": {\"k\": $K, \"num_workers\": 2}}" \
    | python -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "job $JOB"

echo "== wait for the first checkpoint, then kill -9 =="
CHECKPOINTS=0
for _ in $(seq 1 600); do
    CHECKPOINTS=$(curl -fsS "$URL/jobs/$JOB/events" | python -c \
        'import json,sys; print(sum(1 for e in json.load(sys.stdin)["events"] if e["type"] == "checkpoint"))')
    if [ "$CHECKPOINTS" -ge 1 ]; then
        break
    fi
    sleep 0.05
done
if [ "$CHECKPOINTS" -lt 1 ]; then
    echo "service_smoke: job never checkpointed" >&2
    exit 1
fi
STATE=$(job_field "$JOB" 'doc["job"]["state"]')
if [ "$STATE" != "running" ] && [ "$STATE" != "queued" ]; then
    echo "service_smoke: job already $STATE; cannot kill mid-assembly" >&2
    exit 1
fi
echo "== scrape /metrics mid-run: well-formed Prometheus text + core series =="
curl -fsS "$URL/metrics" | python -c '
import re, sys
text = sys.stdin.read()
sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$")
lines = [l for l in text.splitlines() if l and not l.startswith("#")]
assert lines, "empty /metrics exposition"
for line in lines:
    assert sample.match(line), f"malformed sample line: {line!r}"
for series in (
    "repro_jobs_queued",
    "repro_jobs_running",
    "repro_jobs_submitted_total 1",
    "repro_http_requests_total",
    "repro_http_request_seconds_bucket",
    "repro_claim_latency_seconds_count",
):
    assert series in text, f"missing series: {series}"
print(f"/metrics OK mid-run ({len(lines)} samples)")
'

echo "killing server (job $STATE, $CHECKPOINTS checkpoint(s) written)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== restart: the job must resume and finish =="
start_server
STATE=""
for _ in $(seq 1 1200); do
    STATE=$(job_field "$JOB" 'doc["job"]["state"]')
    case "$STATE" in
        succeeded) break ;;
        failed|cancelled)
            echo "service_smoke: job ended $STATE after restart" >&2
            job_field "$JOB" 'doc["job"]["error"]' >&2 || true
            exit 1 ;;
    esac
    sleep 0.25
done
if [ "$STATE" != "succeeded" ]; then
    echo "service_smoke: job did not finish after restart" >&2
    exit 1
fi

echo "== assert the resume actually resumed =="
curl -fsS "$URL/jobs/$JOB/events" | python -c '
import json, sys
types = [event["type"] for event in json.load(sys.stdin)["events"]]
assert "recovered" in types, f"no recovery event: {types}"
assert "stage-skipped" in types, f"resume recomputed everything: {types}"
print(f"recovered; {types.count('"'"'stage-skipped'"'"')} stages skipped on resume")
'

echo "== assert byte-identical contigs =="
curl -fsS "$URL/jobs/$JOB/contigs.fasta" > "$DATA_DIR/resumed.fa"
cmp "$DATA_DIR/reference.fa" "$DATA_DIR/resumed.fa"

echo "== scrape /metrics after success: superstep counters populated =="
curl -fsS "$URL/metrics" | python -c '
import re, sys
text = sys.stdin.read()
messages = re.search(r"^repro_pregel_messages_total\{[^}]*\} (\d+)", text, re.M)
assert messages, "no repro_pregel_messages_total series after a finished job"
assert int(messages.group(1)) > 0, "superstep message counter stayed zero"
assert re.search(r"^repro_jobs_completed_total\{state=\"succeeded\"\} 1$", text, re.M), \
    "job completion not counted"
print(f"/metrics OK after success ({messages.group(1)} Pregel messages counted)")
'

echo "== fetch the job trace =="
curl -fsS "$URL/jobs/$JOB/trace" | python -c '
import json, sys
root = json.load(sys.stdin)["trace"]
assert root["name"].startswith("job:"), root["name"]
assert root["children"][0]["name"] == "workflow:ppa-assembly"
name, outcome = root["name"], root["attributes"]["outcome"]
print(f"trace OK (root {name}, outcome {outcome})")
'

echo "== fetch the run timeline: superstep series present and sorted =="
curl -fsS "$URL/jobs/$JOB/timeline" | python -c '
import json, sys
events = json.load(sys.stdin)["events"]
kinds = {}
for event in events:
    kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
for kind in ("superstep", "stage-start", "stage-end", "sample"):
    assert kinds.get(kind, 0) > 0, f"no {kind} events in timeline: {kinds}"
timestamps = [event["ts"] for event in events]
assert timestamps == sorted(timestamps), "timeline not sorted by ts"
print(f"timeline OK ({len(events)} events: {kinds})")
'

echo "== render the ops report (kept for CI artifact upload) =="
REPORT_PATH="${SMOKE_REPORT:-/tmp/service_smoke_report.html}"
curl -fsS "$URL/jobs/$JOB/report" > "$REPORT_PATH"
python - "$REPORT_PATH" <<'PYEOF'
import sys, xml.etree.ElementTree as ET
path = sys.argv[1]
with open(path, encoding="utf-8") as handle:
    html = handle.read()
root = ET.fromstring(html)  # no DOCTYPE, void tags closed: XML-parseable
assert root.tag == "html", root.tag
for needle in ("Span waterfall", "Resident set size"):
    assert needle in html, f"missing report section: {needle}"
print(f"report OK ({len(html)} bytes -> {path})")
PYEOF

echo "== render the dashboard =="
curl -fsS "$URL/dashboard" > "$DATA_DIR/dashboard.html"
python - "$JOB" "$DATA_DIR/dashboard.html" <<'PYEOF'
import sys, xml.etree.ElementTree as ET
job_id, path = sys.argv[1], sys.argv[2]
with open(path, encoding="utf-8") as handle:
    html = handle.read()
ET.fromstring(html)
assert job_id[:12] in html, "finished job missing from dashboard"
assert f'href="/jobs/{job_id}/report"' in html, "dashboard does not link the report"
print(f"dashboard OK ({len(html)} bytes)")
PYEOF

echo "== chaos: kill -9 a worker process mid-job; NO server restart =="
CHAOS_JOB=$(curl -fsS -X POST "$URL/jobs" -H 'Content-Type: application/json' \
    -d "{\"input\": {\"mode\": \"simulate\", \"genome_length\": $GENOME, \"seed\": $SEED},
         \"config\": {\"k\": $K, \"num_workers\": 2},
         \"retry\": {\"backoff_seconds\": 0.1}}" \
    | python -c 'import json,sys; print(json.load(sys.stdin)["job"]["id"])')
echo "chaos job $CHAOS_JOB"
CHECKPOINTS=0
for _ in $(seq 1 600); do
    CHECKPOINTS=$(curl -fsS "$URL/jobs/$CHAOS_JOB/events" | python -c \
        'import json,sys; print(sum(1 for e in json.load(sys.stdin)["events"] if e["type"] == "checkpoint"))')
    if [ "$CHECKPOINTS" -ge 1 ]; then
        break
    fi
    sleep 0.05
done
if [ "$CHECKPOINTS" -lt 1 ]; then
    echo "service_smoke: chaos job never checkpointed" >&2
    exit 1
fi
WORKER_PID=$(curl -fsS "$URL/healthz" | python -c \
    'import json,sys; pids=json.load(sys.stdin)["worker_pids"]; print(pids[0] if pids else "")')
if [ -z "$WORKER_PID" ]; then
    echo "service_smoke: no worker process pid in /healthz" >&2
    exit 1
fi
echo "killing worker process $WORKER_PID ($CHECKPOINTS checkpoint(s) written)"
kill -9 "$WORKER_PID"

STATE=""
for _ in $(seq 1 1200); do
    STATE=$(job_field "$CHAOS_JOB" 'doc["job"]["state"]')
    case "$STATE" in
        succeeded) break ;;
        failed|cancelled|poisoned)
            echo "service_smoke: chaos job ended $STATE" >&2
            job_field "$CHAOS_JOB" 'doc["job"]["error"]' >&2 || true
            exit 1 ;;
    esac
    sleep 0.25
done
if [ "$STATE" != "succeeded" ]; then
    echo "service_smoke: chaos job did not finish after the worker kill" >&2
    exit 1
fi

echo "== assert the supervisor reclaimed and the retry resumed =="
ATTEMPTS=$(job_field "$CHAOS_JOB" 'doc["job"]["attempts"]')
if [ "$ATTEMPTS" -lt 2 ]; then
    echo "service_smoke: expected a retry, got attempts=$ATTEMPTS" >&2
    exit 1
fi
curl -fsS "$URL/jobs/$CHAOS_JOB/events" | python -c '
import json, sys
types = [event["type"] for event in json.load(sys.stdin)["events"]]
assert "recovered" in types, f"no recovery event: {types}"
assert "stage-skipped" in types, f"retry recomputed everything: {types}"
print(f"worker death recovered; {types.count('"'"'stage-skipped'"'"')} stages skipped on retry")
'

echo "== assert worker-death metrics =="
curl -fsS "$URL/metrics" | python -c '
import re, sys
text = sys.stdin.read()
deaths = re.search(r"^repro_worker_deaths_total\{reason=\"signal-9\"\} (\d+)", text, re.M)
assert deaths and int(deaths.group(1)) >= 1, "worker SIGKILL not counted"
reclaims = re.search(r"^repro_lease_reclaims_total\{[^}]*\} (\d+)", text, re.M)
assert reclaims and int(reclaims.group(1)) >= 1, "lease reclaim not counted"
print(f"/metrics OK after chaos ({deaths.group(1)} worker death(s) counted)")
'

echo "== assert byte-identical contigs after the worker kill =="
curl -fsS "$URL/jobs/$CHAOS_JOB/contigs.fasta" > "$DATA_DIR/chaos.fa"
cmp "$DATA_DIR/reference.fa" "$DATA_DIR/chaos.fa"

echo "service_smoke: resume-to-identical-result OK (server restart and worker kill)"
