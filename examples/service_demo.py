#!/usr/bin/env python3
"""The assembly job service, end to end: submit → watch → fetch.

Starts the durable job service in-process (exactly what
``repro-assemble serve`` runs), then acts as a remote client would:

1. submit two assembly jobs over HTTP — one plain, one paired-end with
   scaffolding — with an idempotency key making the submission
   retry-safe,
2. stream the first job's stage events live while it runs (the same
   events ``repro-assemble submit --wait`` prints),
3. fetch the results: quality metrics JSON plus the contig FASTA, and
   the scaffold FASTA for the scaffolded job.

Run with::

    python examples/service_demo.py

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (used by the CI smoke run).
In production the service would run in its own process (``repro-assemble
serve --data-dir …``) and survive ``kill -9``: interrupted jobs resume
from their per-stage checkpoints bit-identically on restart.
"""

from __future__ import annotations

import os
import tempfile

from repro.service import AssemblyService, JobSpec, ServiceClient

EXAMPLE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    genome_length = max(2_000, int(12_000 * EXAMPLE_SCALE))

    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as data_dir:
        # ------------------------------------------------------------------
        # 1. A service with two worker slots, on a free loopback port.
        # ------------------------------------------------------------------
        with AssemblyService(data_dir, num_workers=2, port=0) as service:
            client = ServiceClient(service.base_url)
            print(f"service up at {service.base_url} "
                  f"({service.health()['workers']} workers)")

            # --------------------------------------------------------------
            # 2. Submit: one plain job, one paired-end + scaffolding job.
            # --------------------------------------------------------------
            plain = client.submit(
                JobSpec(
                    input={"mode": "simulate",
                           "genome_length": genome_length, "seed": 1},
                    config={"k": 17, "num_workers": 2},
                ),
                idempotency_key="demo-plain",
            )
            scaffolded = client.submit(
                JobSpec(
                    input={"mode": "simulate",
                           "genome_length": genome_length, "seed": 2,
                           "insert_size": 400.0},
                    config={"k": 17, "num_workers": 2, "scaffold": True},
                ),
                priority=1,  # jumps the queue if workers are busy
            )
            print(f"submitted jobs {plain['id'][:8]}… and {scaffolded['id'][:8]}…")

            # --------------------------------------------------------------
            # 3. Watch the plain job's stage events stream in.
            # --------------------------------------------------------------
            def show(event):
                payload = event["payload"]
                if event["type"] == "stage-end":
                    print(f"  stage {payload['index'] + 1}/{payload['total']} "
                          f"{payload['stage']} done in {payload['seconds']:.3f}s")

            final = client.wait(plain["id"], timeout=600, on_event=show)
            print(f"plain job: {final['job']['state']}")

            # --------------------------------------------------------------
            # 4. Fetch results: metrics JSON + FASTA artifacts.
            # --------------------------------------------------------------
            metrics = client.result(plain["id"])
            contigs = metrics["contigs"]
            print(f"contigs: {contigs['count']} pieces, N50 {contigs['n50']}, "
                  f"NG50 {contigs.get('ng50', '—')}")
            fasta = client.contigs_fasta(plain["id"])
            print(f"contig FASTA: {fasta.count('>')} records, "
                  f"{len(fasta)} bytes (first: {fasta.splitlines()[0]})")

            scaffold_final = client.wait(scaffolded["id"], timeout=600)
            print(f"scaffolded job: {scaffold_final['job']['state']}")
            scaffold_metrics = client.result(scaffolded["id"])
            if scaffold_metrics["scaffolds"] is not None:
                print(f"scaffolds: {scaffold_metrics['scaffolds']['count']} pieces, "
                      f"N50 {scaffold_metrics['scaffolds']['n50']} "
                      f"(contig N50 {scaffold_metrics['contigs']['n50']})")
                scaffold_fasta = client.scaffolds_fasta(scaffolded["id"])
                print(f"scaffold FASTA: {scaffold_fasta.count('>')} records")

            counts = client.health()["counts"]
            print(f"served: {counts['succeeded']} succeeded, "
                  f"{counts['failed']} failed")


if __name__ == "__main__":
    main()
