#!/usr/bin/env python3
"""Paired-end scaffolding: from fragmented contigs to ordered scaffolds.

Walks the full scaffolding workflow added on top of the paper's
pipeline:

1. simulate a *repeat-fragmented* genome and a paired-end library with
   an insert-size model (600 ± 60 bp, well above the repeat length so
   pairs can bridge assembly breaks),
2. assemble the mates into contigs with the standard ①②③④⑤⑥②③
   workflow,
3. run the scaffolding stage — read-pair mapping, contig-link bundling,
   Hash-Min components and list-ranking ordering as Pregel jobs on the
   contig-link graph — and
4. compare contig vs scaffold contiguity (N50/NG50).

Run with::

    python examples/scaffolding_demo.py

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (used by the CI smoke run).
"""

from __future__ import annotations

import os

from repro import AssemblyConfig, PPAAssembler
from repro.dna import simulate_paired_dataset
from repro.quality import n50_value, ng50_value

EXAMPLE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A fragmented genome and a paired-end library.
    # ------------------------------------------------------------------
    genome_length = max(4_000, int(16_000 * EXAMPLE_SCALE))
    genome, pairs = simulate_paired_dataset(
        genome_length,
        coverage=22,
        insert_size_mean=600.0,
        insert_size_std=60.0,
        error_rate=0.005,
        repeat_fraction=0.08,
        repeat_length=120,
        seed=9,
    )
    print(f"genome {len(genome):,} bp, {len(pairs):,} read pairs "
          f"(insert 600±60, repeats fragment the assembly)")

    # ------------------------------------------------------------------
    # 2 + 3. Assemble, then scaffold (one call: the stage is part of
    # the pipeline when config.scaffold is on and pairs are supplied).
    # ------------------------------------------------------------------
    config = AssemblyConfig(k=21, num_workers=4, scaffold=True)
    result = PPAAssembler(config).assemble_paired(pairs)

    stage = result.stage("scaffolding")
    print("\nscaffolding stage:")
    for key, value in stage.detail.items():
        print(f"  {key:14s} {value}")

    # ------------------------------------------------------------------
    # 4. Contig vs scaffold contiguity.
    # ------------------------------------------------------------------
    contig_lengths = [len(sequence) for sequence in result.contigs]
    scaffold_lengths = [len(sequence) for sequence in result.scaffolds]
    print("\ncontiguity:")
    print(f"  {'':10s} {'count':>7s} {'N50':>8s} {'NG50':>8s} {'largest':>8s}")
    print(f"  {'contigs':10s} {len(contig_lengths):7d} "
          f"{n50_value(contig_lengths):8d} "
          f"{ng50_value(contig_lengths, genome_length):8d} "
          f"{max(contig_lengths, default=0):8d}")
    print(f"  {'scaffolds':10s} {len(scaffold_lengths):7d} "
          f"{n50_value(scaffold_lengths):8d} "
          f"{ng50_value(scaffold_lengths, genome_length):8d} "
          f"{max(scaffold_lengths, default=0):8d}")

    biggest = max(result.scaffolding.scaffolds, key=lambda s: len(s.sequence))
    if len(biggest.members) > 1:
        layout = " -> ".join(
            f"contig{member.contig}{'+' if member.forward else '-'}"
            + (f" (gap {member.gap_before})" if member.gap_before else "")
            for member in biggest.members
        )
        print(f"\nlargest scaffold layout: {layout}")


if __name__ == "__main__":
    main()
