#!/usr/bin/env python3
"""Assemble one dataset with all four assemblers and print a Table IV-style report.

Also demonstrates FASTQ/FASTA round-tripping: the simulated reads are
written to a FASTQ file, read back, assembled, and the contigs of every
assembler are written to FASTA files next to it.

Run with::

    python examples/quality_report.py [output_directory]

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (used by the CI smoke run).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro import AssemblyConfig, PPAAssembler
from repro.baselines import AbyssLikeAssembler, RayLikeAssembler, SwapLikeAssembler
from repro.bench import format_comparison
from repro.dna import (
    FastaRecord,
    get_profile,
    parse_fastq,
    write_fasta,
    write_fastq,
)
from repro.quality import compare_assemblies

MIN_CONTIG = 100
K = 21
EXAMPLE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="ppa-"))
    output_dir.mkdir(parents=True, exist_ok=True)

    # HC-2 is the profile with a reference, which Table IV needs.
    profile = get_profile("hc2", scale=0.5 * EXAMPLE_SCALE)
    reference, reads = profile.generate_with_reference()

    # FASTQ round trip: write the simulated reads, then parse them back,
    # exactly as a user with real data would start.
    fastq_path = output_dir / "hc2_reads.fastq"
    write_fastq(reads, fastq_path)
    reads = list(parse_fastq(fastq_path))
    print(f"wrote and re-read {len(reads):,} reads via {fastq_path}")

    assemblies = {}

    config = AssemblyConfig(k=K, coverage_threshold=1, tip_length_threshold=80, num_workers=8)
    ppa = PPAAssembler(config).assemble(reads)
    assemblies["PPA"] = ppa.contigs

    for assembler in (
        AbyssLikeAssembler(k=K, num_workers=8),
        RayLikeAssembler(k=K, num_workers=8),
        SwapLikeAssembler(k=K, num_workers=8),
    ):
        result = assembler.assemble(reads)
        assemblies[result.assembler] = result.contigs

    # Write each assembly to FASTA.
    for name, contigs in assemblies.items():
        fasta_path = output_dir / f"{name.lower().replace('-', '_')}_contigs.fasta"
        write_fasta(
            (FastaRecord(f"{name}_contig_{i}", contig) for i, contig in enumerate(contigs)),
            fasta_path,
        )
        print(f"  {name:15s} -> {fasta_path}")

    # Quality comparison against the known reference.
    reports = compare_assemblies(
        assemblies, reference=reference, min_contig_length=MIN_CONTIG, anchor_k=K
    )
    per_assembler = {report.assembler: report.as_dict() for report in reports}
    metrics = [
        "num_contigs",
        "total_length",
        "n50",
        "largest_contig",
        "gc_percent",
        "misassemblies",
        "unaligned_length",
        "genome_fraction",
        "mismatches_per_100kbp",
        "largest_alignment",
    ]
    print()
    print(
        format_comparison(
            metrics,
            per_assembler,
            title=f"Quality comparison on HC-2 (scaled), contigs ≥ {MIN_CONTIG} bp",
        )
    )


if __name__ == "__main__":
    main()
