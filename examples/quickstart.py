#!/usr/bin/env python3
"""Quickstart: simulate a small genome, assemble it, inspect the result.

Run with::

    python examples/quickstart.py

The script walks through the shortest useful path through the library:

1. generate a synthetic reference genome and an error-bearing read set
   (the offline stand-in for the paper's FASTQ datasets),
2. run the full PPA-assembler workflow (①②③④⑤⑥②③ of Figure 10),
3. print per-stage statistics and the headline contig metrics,
4. check the contigs against the known reference.

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (CI smoke-tests every
example at a tiny scale so the documented entry points cannot rot).
"""

from __future__ import annotations

import os

from repro import AssemblyConfig, PPAAssembler
from repro.dna import reverse_complement, simulate_dataset
from repro.quality import evaluate_assembly

EXAMPLE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A small synthetic dataset: 20 kbp genome, 20x coverage,
    #    0.5% substitution errors, a few repeated segments.
    # ------------------------------------------------------------------
    genome, reads = simulate_dataset(
        genome_length=max(2_000, int(20_000 * EXAMPLE_SCALE)),
        read_length=100,
        coverage=20,
        error_rate=0.005,
        repeat_fraction=0.04,
        seed=11,
    )
    print(f"simulated genome: {len(genome):,} bp, reads: {len(reads):,}")

    # ------------------------------------------------------------------
    # 2. Assemble with the paper's default workflow.
    # ------------------------------------------------------------------
    config = AssemblyConfig(
        k=21,                    # the paper uses 31; 21 suits the small genome
        coverage_threshold=1,    # θ: drop (k+1)-mers seen only once
        tip_length_threshold=80, # the paper's tip threshold
        bubble_edit_distance=5,  # the paper's bubble threshold
        num_workers=8,           # simulated Pregel workers
    )
    result = PPAAssembler(config).assemble(reads)

    # ------------------------------------------------------------------
    # 3. Stage-by-stage report.
    # ------------------------------------------------------------------
    print("\npipeline stages:")
    for stage in result.stages:
        details = ", ".join(f"{key}={value}" for key, value in stage.detail.items())
        print(f"  {stage.name:36s} {details}")

    print("\ncontig statistics:")
    print(f"  contigs:          {result.num_contigs()}")
    print(f"  total length:     {result.total_length():,} bp")
    print(f"  largest contig:   {result.largest_contig():,} bp")
    print(f"  simulated time:   {result.estimated_seconds():.1f} s "
          f"(BSP cost model, {config.num_workers} workers)")

    # ------------------------------------------------------------------
    # 4. Quality check against the reference we happen to know.
    # ------------------------------------------------------------------
    report = evaluate_assembly(
        result.contigs, reference=genome, assembler="PPA", min_contig_length=100
    )
    print("\nquality (QUAST-style):")
    for key, value in report.as_dict().items():
        print(f"  {key:24s} {value}")

    exact = sum(
        1
        for contig in result.contigs
        if contig in genome or reverse_complement(contig) in genome
    )
    print(f"\n{exact}/{result.num_contigs()} contigs are exact substrings of the reference")


if __name__ == "__main__":
    main()
