#!/usr/bin/env python3
"""Composing the toolkit operations into a custom declarative workflow.

PPA-assembler is a *toolkit*: the five operations of Figure 10 are
exposed individually so users can assemble their own workflow (the
paper's Section IV-B makes this point explicitly).  This example builds
a custom pipeline as a :class:`repro.workflow.Workflow` instead of
using :class:`PPAAssembler`:

* DBG construction with a stricter coverage threshold,
* contig labeling with the **simplified S-V** method instead of the
  default bidirectional list ranking (and a comparison of the two),
* two rounds of bubble filtering with different edit-distance budgets,
* a final merge, skipping tip removal entirely.

It then demonstrates the operational payoff of the declarative form:
the run checkpoints after every stage, a crash is simulated midway,
and ``WorkflowRunner.resume`` continues from the last completed stage
instead of recomputing anything.

Run with::

    python examples/custom_workflow.py

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (used by the CI smoke run).
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.assembler import (
    AssemblyConfig,
    build_dbg,
    filter_bubbles,
    label_contigs,
    merge_contigs,
)
from repro.assembler.config import LABELING_SIMPLIFIED_SV
from repro.dbg.ids import ContigIdAllocator
from repro.dna import simulate_dataset
from repro.pregel import CostModel
from repro.quality import contig_statistics
from repro.workflow import ConvertStage, Workflow, WorkflowHooks, WorkflowRunner


EXAMPLE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


# ── stage bodies: plain functions over the workflow context ──────────────
def stage_construction(ctx) -> None:
    config = ctx.require("config")
    construction = build_dbg(ctx.require("reads"), config, ctx)
    ctx.state["graph"] = construction.graph
    # Created here, not in the seed state: checkpoints tie a resume to
    # the run's *initial* inputs, so seed values must stay immutable.
    ctx.state["allocator"] = ContigIdAllocator()
    print(f"\n① DBG: {construction.graph.kmer_count():,} k-mer vertices, "
          f"{construction.filtered_kplus1mers:,} low-coverage (k+1)-mers dropped")


def stage_labeling_comparison(ctx) -> None:
    config = ctx.require("config")
    graph = ctx.require("graph")
    sv_labeling = label_contigs(graph, config, ctx)
    lr_labeling = label_contigs(graph, config.with_labeling("list_ranking"), ctx)
    ctx.state["labeling"] = sv_labeling
    print("\n② labeling comparison on this graph:")
    print(f"   simplified S-V : {sv_labeling.num_supersteps:3d} supersteps, "
          f"{sv_labeling.num_messages:,} messages")
    print(f"   list ranking   : {lr_labeling.num_supersteps:3d} supersteps, "
          f"{lr_labeling.num_messages:,} messages")


def stage_first_merge(ctx) -> None:
    merging = merge_contigs(
        ctx.require("graph"), ctx.require("labeling"),
        ctx.require("config"), ctx, ctx.require("allocator"),
    )
    print(f"\n③ merged {len(merging.contigs_created)} contigs "
          f"({merging.tips_dropped} short dangling paths dropped)")


def stage_bubbles_strict(ctx) -> None:
    strict = filter_bubbles(ctx.require("graph"), ctx.require("config"), ctx)
    ctx.state["strict_pruned"] = strict.num_pruned


def stage_bubbles_relaxed(ctx) -> None:
    from dataclasses import replace
    relaxed_config = replace(ctx.require("config"), bubble_edit_distance=8)
    relaxed = filter_bubbles(ctx.require("graph"), relaxed_config, ctx)
    print(f"④ bubble filtering: {ctx.require('strict_pruned')} pruned at "
          f"distance<3, {relaxed.num_pruned} more at distance<8")


def stage_regrow(ctx) -> None:
    config = ctx.require("config")
    graph = ctx.require("graph")
    relabeling = label_contigs(graph, config, ctx, include_contigs=True)
    final_merge = merge_contigs(graph, relabeling, config, ctx, ctx.require("allocator"))
    print(f"⑥②③ regrown into {len(final_merge.contigs_created)} contigs")


def build_custom_workflow() -> Workflow:
    workflow = Workflow(
        "custom-sv-strategy",
        description="strict-θ construction, S-V labeling, double bubble pass, no tip removal",
    )
    workflow.add(ConvertStage("construction", stage_construction))
    workflow.add(ConvertStage("labeling-comparison", stage_labeling_comparison))
    workflow.add(ConvertStage("first-merge", stage_first_merge))
    workflow.add(ConvertStage("bubbles-strict", stage_bubbles_strict))
    workflow.add(ConvertStage("bubbles-relaxed", stage_bubbles_relaxed))
    workflow.add(ConvertStage("regrow", stage_regrow))
    return workflow


class SimulatedCrash(RuntimeError):
    """Stands in for the power loss a checkpointed run survives."""


def main() -> None:
    genome, reads = simulate_dataset(
        genome_length=max(2_000, int(15_000 * EXAMPLE_SCALE)),
        read_length=100,
        coverage=25,
        error_rate=0.008,
        seed=5,
    )
    print(f"genome {len(genome):,} bp, {len(reads):,} reads")

    config = AssemblyConfig(
        k=21,
        coverage_threshold=2,          # stricter than the default θ=1
        tip_length_threshold=80,
        bubble_edit_distance=3,
        labeling_method=LABELING_SIMPLIFIED_SV,
        num_workers=8,
    )
    workflow = build_custom_workflow()
    print("\n" + workflow.describe())

    state = {"config": config, "reads": reads}
    checkpoint_dir = tempfile.mkdtemp(prefix="repro-custom-workflow-")

    # ── first attempt: checkpoint every stage, "crash" after stage 4 ──
    def crash_after_bubbles(stage, index, total, seconds):
        if stage.name == "bubbles-strict":
            raise SimulatedCrash(stage.name)

    try:
        WorkflowRunner(
            num_workers=config.num_workers,
            checkpoint_dir=checkpoint_dir,
            hooks=WorkflowHooks(on_stage_end=crash_after_bubbles),
        ).run(workflow, state=state)
        raise AssertionError("the simulated crash did not fire")
    except SimulatedCrash as crash:
        print(f"\n-- simulated crash after stage {crash} "
              f"(checkpoints in {checkpoint_dir})")

    # ── second attempt: resume skips everything already computed ──────
    resume_hooks = WorkflowHooks(
        on_stage_skipped=lambda stage, index, total: print(
            f"   resume skips completed stage {index + 1}/{total} {stage.name}"
        )
    )
    ctx = WorkflowRunner(
        num_workers=config.num_workers,
        checkpoint_dir=checkpoint_dir,
        hooks=resume_hooks,
    ).resume(workflow, state=state)
    shutil.rmtree(checkpoint_dir, ignore_errors=True)

    # ── results ────────────────────────────────────────────────────────
    stats = contig_statistics(
        ctx.state["graph"].contig_sequences(), min_contig_length=100
    )
    print("\nfinal contigs (≥100 bp):")
    for key, value in stats.as_dict().items():
        print(f"  {key:20s} {value}")

    seconds = CostModel().pipeline_seconds(ctx.pipeline_metrics)
    print(f"\nsimulated cluster time for the whole custom workflow: {seconds:.1f} s")
    print(f"jobs executed: {[job.job_name for job in ctx.pipeline_metrics.jobs]}")


if __name__ == "__main__":
    main()
