#!/usr/bin/env python3
"""Composing the toolkit operations into a custom assembly strategy.

PPA-assembler is a *toolkit*: the five operations of Figure 10 are
exposed individually so users can assemble their own workflow (the
paper's Section IV-B makes this point explicitly).  This example builds
a custom pipeline by hand instead of using :class:`PPAAssembler`:

* DBG construction with a stricter coverage threshold,
* contig labeling with the **simplified S-V** method instead of the
  default bidirectional list ranking (and a comparison of the two),
* two rounds of bubble filtering with different edit-distance budgets,
* a final merge, skipping tip removal entirely.

Run with::

    python examples/custom_workflow.py

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (used by the CI smoke run).
"""

from __future__ import annotations

import os

from repro.assembler import (
    AssemblyConfig,
    build_dbg,
    filter_bubbles,
    label_contigs,
    merge_contigs,
)
from repro.assembler.config import LABELING_SIMPLIFIED_SV
from repro.dbg.ids import ContigIdAllocator
from repro.dna import simulate_dataset
from repro.pregel import CostModel
from repro.pregel.job import JobChain
from repro.quality import contig_statistics


EXAMPLE_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    genome, reads = simulate_dataset(
        genome_length=max(2_000, int(15_000 * EXAMPLE_SCALE)),
        read_length=100,
        coverage=25,
        error_rate=0.008,
        seed=5,
    )
    print(f"genome {len(genome):,} bp, {len(reads):,} reads")

    config = AssemblyConfig(
        k=21,
        coverage_threshold=2,          # stricter than the default θ=1
        tip_length_threshold=80,
        bubble_edit_distance=3,
        labeling_method=LABELING_SIMPLIFIED_SV,
        num_workers=8,
    )
    chain = JobChain(num_workers=config.num_workers)
    allocator = ContigIdAllocator()

    # ── ① construction ────────────────────────────────────────────────
    construction = build_dbg(reads, config, chain)
    graph = construction.graph
    print(f"\n① DBG: {graph.kmer_count():,} k-mer vertices, "
          f"{construction.filtered_kplus1mers:,} low-coverage (k+1)-mers dropped")

    # ── ② labeling: compare the two methods on the same graph ─────────
    sv_labeling = label_contigs(graph, config, chain)
    lr_labeling = label_contigs(graph, config.with_labeling("list_ranking"), chain)
    print("\n② labeling comparison on this graph:")
    print(f"   simplified S-V : {sv_labeling.num_supersteps:3d} supersteps, "
          f"{sv_labeling.num_messages:,} messages")
    print(f"   list ranking   : {lr_labeling.num_supersteps:3d} supersteps, "
          f"{lr_labeling.num_messages:,} messages")

    # ── ③ merging (using the S-V labels) ──────────────────────────────
    merging = merge_contigs(graph, sv_labeling, config, chain, allocator)
    print(f"\n③ merged {len(merging.contigs_created)} contigs "
          f"({merging.tips_dropped} short dangling paths dropped)")

    # ── ④ two bubble-filtering passes with different budgets ──────────
    strict = filter_bubbles(graph, config, chain)
    relaxed_config = AssemblyConfig(
        k=config.k,
        coverage_threshold=config.coverage_threshold,
        tip_length_threshold=config.tip_length_threshold,
        bubble_edit_distance=8,
        labeling_method=config.labeling_method,
        num_workers=config.num_workers,
    )
    relaxed = filter_bubbles(graph, relaxed_config, chain)
    print(f"④ bubble filtering: {strict.num_pruned} pruned at distance<3, "
          f"{relaxed.num_pruned} more at distance<8")

    # ── ⑥②③ regrow contigs after error correction ────────────────────
    relabeling = label_contigs(graph, config, chain, include_contigs=True)
    final_merge = merge_contigs(graph, relabeling, config, chain, allocator)
    print(f"⑥②③ regrown into {len(final_merge.contigs_created)} contigs")

    # ── results ────────────────────────────────────────────────────────
    stats = contig_statistics(graph.contig_sequences(), min_contig_length=100)
    print("\nfinal contigs (≥100 bp):")
    for key, value in stats.as_dict().items():
        print(f"  {key:20s} {value}")

    seconds = CostModel().pipeline_seconds(chain.metrics())
    print(f"\nsimulated cluster time for the whole custom workflow: {seconds:.1f} s")
    print(f"jobs executed: {[job.job_name for job in chain.metrics().jobs]}")


if __name__ == "__main__":
    main()
