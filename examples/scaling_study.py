#!/usr/bin/env python3
"""Worker-scaling study: a small Figure 12 on your laptop.

Runs PPA-assembler and the three baseline assemblers over one scaled
dataset profile at several simulated worker counts and prints the
estimated execution time of each, reproducing the *shape* of Figure 12
(PPA fastest and scaling, SWAP scaling, ABySS flat, Ray slowest).

Run with::

    python examples/scaling_study.py [dataset] [scale]

where ``dataset`` is one of hc2/hcx/hc14/bi (default hc14) and
``scale`` shrinks or grows the dataset (default 0.15).
"""

from __future__ import annotations

import sys

from repro.bench import (
    FIGURE12_WORKERS,
    bench_cluster_profile,
    format_scaling_series,
    prepare_dataset,
    run_baselines,
    run_ppa,
)


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "hc14"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15

    dataset = prepare_dataset(dataset_name, scale=scale)
    print(
        f"dataset {dataset_name}: {len(dataset.reads):,} reads, "
        f"genome {dataset.profile.genome_length:,} bp (scale {scale})"
    )

    cluster = bench_cluster_profile()
    series = {"PPA-Assembler": {}, "ABySS": {}, "Ray": {}, "SWAP-Assembler": {}}
    for workers in FIGURE12_WORKERS:
        print(f"  running all assemblers with {workers} workers ...")
        ppa = run_ppa(dataset, num_workers=workers)
        series["PPA-Assembler"][workers] = ppa.estimated_seconds(cluster)
        for name, result in run_baselines(dataset, num_workers=workers).items():
            series[name][workers] = result.estimated_seconds

    print()
    print(
        format_scaling_series(
            series,
            title=f"Estimated execution time on {dataset_name.upper()} (simulated cluster)",
        )
    )
    print(
        "\nExpected shape (paper, Figure 12): PPA fastest and improving with "
        "workers; SWAP second and improving; ABySS flat; Ray slowest."
    )


if __name__ == "__main__":
    main()
